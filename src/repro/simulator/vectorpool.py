"""Vectorized simulation engine (fast path) — incremental placement kernel.

Implements *exactly* the same admission and accounting semantics as the
object path (:class:`~repro.localsched.agent.LocalScheduler` +
:class:`~repro.scheduling.global_scheduler.ScoreBasedScheduler`) but
keeps the whole cluster state in numpy arrays, so filtering and scoring
all hosts for a placement is a handful of vector operations instead of
a Python loop.

Since the incremental-kernel rewrite, the hot path is also
*allocation-free* and *event-proportional*:

* ``feasibility()``/``scores()`` write into preallocated scratch
  buffers instead of allocating ~8 fresh temporaries per event;
* per-host derived quantities (free capacity, allocated M/C ratio and
  its deviation from the machine target, the negative-progress load
  factor, per-level pooling slack and minimum vNode growth) are
  maintained incrementally through a dirty-host set — ``deploy()`` and
  ``remove()`` touch one host, so only that host's cached rows are
  refreshed, not the whole cluster;
* per-level candidate masks (a cheap necessary condition for
  admission) let ``first_fit`` short-circuit: the scan evaluates exact
  feasibility block by block and stops at the first feasible host
  instead of touching the full array.

``kernel="pruned"`` (:mod:`repro.simulator.prunekernel`) layers
hierarchical candidate pruning on top: per-partition score maxima and
candidate counters make ``select()`` *sublinear* in hosts, invalidated
lazily through the same mutation log and falling back to the full
vectorized scan whenever the summaries cannot be patched.  The
uninstrumented run loop additionally drains events in same-timestamp
batches (:func:`repro.simulator.events.iter_event_batches`) so a
tick's departures all land before its first selection.

Every cached quantity is refreshed with the *same elementwise IEEE
operations* the naive kernel applies cluster-wide, so the incremental
and pruned kernels are bit-identical to the retained reference
implementation in :mod:`repro.simulator.refkernel` (``kernel="naive"``
switches back to it).  Four independent oracles enforce the
equivalence:

* the golden-trace conformance suite
  (``tests/simulator/test_golden_trace.py``) replays frozen JSONL
  decision streams byte-for-byte;
* the scale-tier conformance suite
  (``tests/simulator/test_scale_golden.py``) replays frozen 5000-host
  result streams byte-for-byte through the *uninstrumented* loop —
  the path the shape cache and the pruning structures actually run on;
* the kernel-equivalence property suite
  (``tests/simulator/test_kernel_equivalence.py``) compares all
  kernels element-wise on random cluster states, with
  ``tests/simulator/test_prune_invariants.py`` pinning the partition
  summaries against the arrays they summarise;
* the engine-equivalence suite (``tests/simulator/test_equivalence.py``)
  checks placements against the object path.

Because ``feasibility()``/``scores()`` return views into internal
scratch buffers, their results are only valid until the next
``feasibility()``/``scores()`` call on the same cluster; copy them if
you need to keep two results alive (``kernel="naive"`` returns fresh
arrays).  Code that mutates the state arrays (``cap_*``, ``alloc_*``,
``vnode_*``) directly — rather than through ``deploy``/``remove``/
``kill_host`` — must call :meth:`VectorCluster.invalidate` afterwards.

Following the hpc-parallel guidance, this is the profiled hot path of
the repository: Figures 3 and 4 run hundreds of cluster-sizing
simulations through this engine, and ``repro bench engine`` tracks its
events/sec against the committed ``BENCH_engine.json`` baseline.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

import numpy as np

from repro.core.config import SlackVMConfig
from repro.core.errors import CapacityError, ConfigError
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.obs import names as metric_names
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.records import (
    ADMISSION_GROWTH,
    ADMISSION_POOLED,
    ADMISSION_REJECTED,
    AdmissionRecord,
    DecisionRecord,
    DecisionRecorder,
    HostDecision,
    NULL_RECORDER,
)
from repro.scheduling.constants import (
    BESTFIT_BLEND,
    CAPACITY_EPSILON,
    FIRST_FIT_CHUNK,
    TIEBREAK_WEIGHT,
    floats_differ,
)
# Submodule imports, not `from repro.simulator import ...`: importing
# through the package __init__ (which imports this module transitively)
# would create a module-level cycle (R009).
import repro.simulator.prunekernel as prunekernel
import repro.simulator.refkernel as refkernel
from repro.simulator.engine import PlacementRecord, SimulationResult, Timeline
from repro.simulator.events import (
    EventKind,
    iter_event_batches,
    workload_event_list,
    workload_events,
)

if TYPE_CHECKING:  # annotation-only: keeps simulator below oversub (R009)
    from repro.oversub.controller import OversubController, OversubParams

__all__ = ["VectorCluster", "VectorSimulation", "POLICIES", "KERNELS"]

#: Scheduling policies understood by the vector engine; mirrors
#: :mod:`repro.scheduling.baselines`.
POLICIES = (
    "first_fit",
    "best_fit",
    "worst_fit",
    "progress",
    "progress_no_factor",
    "progress_bestfit",
)

#: Placement-kernel implementations: ``incremental`` is the
#: allocation-free default; ``naive`` is the retained pre-change
#: reference (:mod:`repro.simulator.refkernel`); ``pruned`` adds
#: hierarchical candidate pruning on top of the incremental caches so
#: ``select()`` is sublinear in hosts
#: (:mod:`repro.simulator.prunekernel`).
KERNELS = ("incremental", "naive", "pruned")

# Shared with the object-path schedulers via repro.scheduling.constants,
# so the two engines cannot drift apart silently.
_TIEBREAK = TIEBREAK_WEIGHT
_BESTFIT_BLEND = BESTFIT_BLEND
_EPS = CAPACITY_EPSILON

#: Relative tolerance for resolving a computed level ratio to a
#: configured level (e.g. ``2.9999999999`` → the 3:1 level).
_LEVEL_RTOL = 1e-9

#: Above this many dirty hosts a full vectorized cache refresh beats
#: per-host scalar refreshes.
_BULK_REFRESH_FRACTION = 8

# Rows of the packed per-host matrix ``VectorCluster._base``: state
# (alloc/cap), incrementally-maintained caches, and the constant
# first-fit tiebreak term.  Packing them lets the shape-cache subset
# refresh gather every per-host input in one 2-D fancy index.
(
    _R_FREE_CPU,
    _R_FREE_MEM_TOL,
    _R_TARGET,
    _R_MC_DEV,
    _R_LOAD,
    _R_ALLOC_CPU,
    _R_ALLOC_MEM,
    _R_CAP_CPU,
    _R_CAP_MEM,
    _R_TIEBREAK,
) = range(10)

# Planes of the packed per-(level, host) cube ``VectorCluster._lvl``.
_LR_VCPUS, _LR_CPUS, _LR_MAX_SLACK = range(3)

#: Maximum number of (level, shape, policy) masked-score rows kept per
#: cluster.  Catalog workloads re-request a few dozen distinct VM
#: shapes; workloads with unbounded shape diversity bypass the cache
#: (the scratch pipeline serves them) instead of thrashing it.
_SHAPE_CACHE_CAP = 64

#: Mutation-log length that triggers compaction (purely a memory bound;
#: any value preserves correctness).
_MUTLOG_COMPACT = 1 << 20

#: Fixed-point scale of the exact running memory total: allocations are
#: tracked as integer multiples of 2**-20 GB (1 KiB granularity when
#: mem_gb is in GiB).  Catalog memory sizes and the physical
#: reservations ``mem_gb / mem_ratio`` they induce are dyadic rationals
#: far coarser than this, so real workloads stay on the exact path.
_MEM_SCALE_BITS = 20
_MEM_SCALE = float(1 << _MEM_SCALE_BITS)
#: Largest scaled total for which every float64 partial sum of
#: non-negative per-host values is exact (53-bit significand).  Above
#: it (an 8-exabyte fleet) the accumulator falls back to ``np.sum``.
_MEM_EXACT_LIMIT = 1 << 53


class VectorCluster:
    """Array-backed state of every host's vNodes.

    State arrays (``cap_cpu``, ``cap_mem``, ``alloc_cpu``, ``alloc_mem``,
    ``vnode_cpus``, ``vnode_vcpus``, ``supported``) are the source of
    truth; the incremental kernel additionally maintains derived
    per-host caches behind a dirty-host set (see the module docstring
    for the invariants).
    """

    #: Shape-cache capacity, exposed for the pruned kernel's identical
    #: eviction policy (see :data:`_SHAPE_CACHE_CAP`).
    _shape_cache_cap = _SHAPE_CACHE_CAP

    def __init__(
        self,
        machines: Sequence[MachineSpec],
        config: SlackVMConfig,
        host_levels: Sequence[Sequence[float]] | None = None,
        recorder: Optional[DecisionRecorder] = None,
        kernel: str = "incremental",
    ):
        """``host_levels`` optionally restricts each host to a subset of
        the configured level ratios (dedicated PMs in a mixed fleet);
        ``None`` means every host offers every configured level.
        ``recorder`` mirrors :class:`LocalScheduler`'s admission sink:
        when set and enabled, every deploy emits an
        :class:`~repro.obs.records.AdmissionRecord`.  ``kernel``
        selects the placement kernel (see :data:`KERNELS`)."""
        if not machines:
            raise ConfigError("a cluster needs at least one machine")
        if kernel not in KERNELS:
            raise ConfigError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
        self.config = config
        self.machines = list(machines)
        self.recorder = recorder
        self.kernel = kernel
        n = len(machines)
        self.ratios = np.array([lv.ratio for lv in config.levels], dtype=float)
        self.mem_ratios = np.array([lv.mem_ratio for lv in config.levels], dtype=float)
        L = len(self.ratios)
        # Per-host state and caches live as rows of one packed matrix
        # (row indices are the module-level ``_R_*`` constants), and the
        # per-(level, host) state as planes of one packed cube (``_LR_*``).
        # The named attributes below are *views* into them, so all
        # existing elementwise code is unchanged while the shape-cache
        # subset refresh can gather every per-host input for a set of
        # hosts with a single fancy index per matrix.
        self._base = np.zeros((10, n), dtype=float)
        self._free_cpu = self._base[_R_FREE_CPU]
        self._free_mem_tol = self._base[_R_FREE_MEM_TOL]  # free_mem + epsilon
        self._target = self._base[_R_TARGET]  # machine M/C target
        self._mc_dev = self._base[_R_MC_DEV]  # |current M/C - target|
        self._load_factor = self._base[_R_LOAD]  # 1 + alloc/cap
        self.alloc_cpu = self._base[_R_ALLOC_CPU]  # reserved CPUs (integral values)
        self.alloc_mem = self._base[_R_ALLOC_MEM]
        self.cap_cpu = self._base[_R_CAP_CPU]
        self.cap_mem = self._base[_R_CAP_MEM]
        self.cap_cpu[:] = [m.cpus for m in machines]
        self.cap_mem[:] = [m.mem_gb for m in machines]
        # Physical CPU cores, immutable under dynamic oversubscription:
        # ``set_effective_capacity`` rewrites ``cap_cpu`` (what the
        # kernels schedule against) while this records what the hosts
        # actually have.  ``kill_host`` is the one mutation shared by
        # both.
        self.physical_cpu = self.cap_cpu.copy()
        self._lvl = np.zeros((L, 3, n), dtype=float)
        self.vnode_vcpus = self._lvl[:, _LR_VCPUS, :]
        self.vnode_cpus = self._lvl[:, _LR_CPUS, :]
        self._pool_max_slack = self._lvl[:, _LR_MAX_SLACK, :]
        self._level_index = {lv.ratio: i for i, lv in enumerate(config.levels)}
        if host_levels is None:
            self.supported = np.ones((L, n), dtype=bool)
        else:
            if len(host_levels) != n:
                raise ConfigError(
                    f"host_levels has {len(host_levels)} entries for {n} hosts"
                )
            self.supported = np.zeros((L, n), dtype=bool)
            for j, ratios in enumerate(host_levels):
                for ratio in ratios:
                    self.supported[self.level_index(float(ratio)), j] = True
            if not self.supported.any(axis=0).all():
                raise ConfigError("every host must support at least one level")
        # vm_id -> (host, hosted level index, vcpus, mem)
        self._placements: dict[str, tuple[int, int, int, float]] = {}
        # vm_id -> original request (needed to re-place, e.g. migration)
        self._requests: dict[str, VMRequest] = {}
        # Running cluster-wide CPU allocation.  vNode growth/release are
        # always integral, and sums of integers are exact in float64, so
        # this equals ``alloc_cpu.sum()`` bit-for-bit as long as state
        # changes flow through deploy/remove (``invalidate`` recomputes
        # it after direct mutation).
        self.total_alloc_cpu = 0.0
        # Running cluster-wide memory allocation, kept as an integer in
        # units of 2**-20 GB.  While every per-host value is an exact
        # multiple of that unit and the total stays below 2**53 units,
        # ``alloc_mem.sum()``'s pairwise partial sums are all exact
        # integers (the values are non-negative, so each partial is
        # bounded by the total), hence bit-identical to this counter —
        # the O(hosts) per-event reduction collapses to O(1).  The
        # first value that is not a multiple of the unit trips
        # ``_mem_exact`` permanently and ``total_alloc_mem`` degrades
        # to the full ``np.sum`` (status quo ante).
        self._mem_scaled = 0
        self._mem_exact = True
        self._init_kernel_state(L, n)

    # -- incremental-kernel state --------------------------------------------

    def _init_kernel_state(self, L: int, n: int) -> None:
        """Allocate the derived-quantity caches and scratch buffers.

        Everything the hot path writes per event lives here, allocated
        once; ``feasibility()``/``scores()`` never allocate afterwards.
        """
        # Stricter oversubscribed levels eligible as §V-B pooling hosts
        # for a VM at each level (static given the config).
        self._stricter_levels: tuple[tuple[int, ...], ...] = tuple(
            tuple(
                lj
                for lj in range(L)
                if 1 < self.ratios[lj] < self.ratios[li]
            )
            for li in range(L)
        )
        # With one memory ratio across every level (the common case) the
        # per-level pooling memory checks collapse into the own-level
        # one, enabling the fused max-slack pooling mask below.
        # Exact equality is load-bearing here: the fused pooling mask
        # reuses the own-level memory check for every stricter level,
        # which is only bit-identical to the per-level loop when the
        # ratios are *exactly* equal.
        self._uniform_mem = bool(
            np.all(self.mem_ratios == self.mem_ratios[0])  # reprolint: disable=R005
        )
        # Python-float copies of the level constants: the scalar refresh
        # and accounting paths run entirely on python floats (the IEEE
        # arithmetic is identical, the interpreter overhead is not).
        self._ratio_vals = tuple(float(r) for r in self.ratios)
        self._mem_ratio_vals = tuple(float(r) for r in self.mem_ratios)
        self._level_range = tuple(range(L))
        # Constant score terms.
        self._neg_idx = -np.arange(n, dtype=float)
        self._base[_R_TIEBREAK] = _TIEBREAK * self._neg_idx
        self._tiebreak_term = self._base[_R_TIEBREAK]
        # Remaining per-host derived quantities (the dirty-host
        # maintained ones shared with the shape cache are _base rows,
        # bound to named views in __init__).
        self._mc_current = np.empty(n, dtype=float)  # allocated M/C ratio
        # Per-(level, host) derived quantities.  ``_pool_max_slack``
        # (a view of the packed cube) holds the loosest usable pooling
        # slack per (VM level, host): the max of ``_pool_slack`` over
        # that level's supported stricter levels (-inf when none).
        # ``max(slack) >= v`` is exactly ``any(slack_j >= v)``, which
        # fuses the naive kernel's per-level pooling reduction into one
        # comparison.
        self._pool_slack = np.empty((L, n), dtype=float)
        # Shape cache: (level, ratio, vcpus, mem, policy) -> mutable
        # [log position, masked-score array]; see ``select()``.  The
        # mutation log records every host touched by deploy/remove so a
        # cached shape can refresh exactly the hosts that changed since
        # it last synchronized.
        self._mutlog: list[int] = []
        self._shape_cache: dict[tuple, list] = {}
        # Per-level candidate masks: a *necessary* condition for any VM
        # of that level to be admissible on the host (used by the
        # first-fit short-circuit to skip definitely-infeasible hosts).
        # Maintained behind their own dirty set so scored policies,
        # which never consult them, pay nothing for their upkeep.
        self._cand = np.empty((L, n), dtype=bool)
        # Dirty-host bookkeeping: every host starts dirty.
        self._dirty: set[int] = set()
        self._dirty_all = True
        self._cand_dirty: set[int] = set()
        self._cand_dirty_all = True
        # Scratch buffers: feasibility (fb_*), scores (sc_*) and
        # selection (sel_*) use disjoint sets so a feasibility result
        # stays valid across the scores/selection calls of one event.
        self._fb_growth = np.empty(n, dtype=float)
        self._fb_own = np.empty(n, dtype=bool)
        self._fb_feasible = np.empty(n, dtype=bool)
        self._fb_f1 = np.empty(n, dtype=float)
        self._fb_b1 = np.empty(n, dtype=bool)
        self._fb_b2 = np.empty(n, dtype=bool)
        self._fb_pool_acc = np.empty(n, dtype=bool)
        self._fb_pool_tmp = np.empty(n, dtype=bool)
        self._fb_pool_mem = np.empty(n, dtype=bool)
        self._sc_scores = np.empty(n, dtype=float)
        self._sc_f1 = np.empty(n, dtype=float)
        self._sc_f2 = np.empty(n, dtype=float)
        self._sc_f3 = np.empty(n, dtype=float)
        self._sc_b1 = np.empty(n, dtype=bool)
        self._sel_not = np.empty(n, dtype=bool)
        # Hierarchical-pruning bookkeeping (partition geometry and
        # per-level candidate counters); None for the other kernels,
        # which never pay for its upkeep.
        self._prune: Optional[prunekernel.PruneState] = (
            prunekernel.PruneState(n, L) if self.kernel == "pruned" else None
        )

    def _touch(self, host: int) -> None:
        """Mark one host's derived caches stale (cheap, O(1))."""
        self._dirty.add(host)
        self._cand_dirty.add(host)
        self._mutlog.append(host)
        if len(self._mutlog) >= _MUTLOG_COMPACT:
            self._compact_mutlog()

    def _compact_mutlog(self) -> None:
        """Drop the mutation-log prefix every cached shape has consumed.

        If stale cache entries pin most of the log (shapes that stopped
        arriving), drop the cache instead: correctness never depends on
        the log's history, only on cached positions staying aligned
        with it, so both forms of compaction are free.
        """
        cut = min(
            (entry[0] for entry in self._shape_cache.values()),
            default=len(self._mutlog),
        )
        if cut * 2 < len(self._mutlog):
            self._shape_cache.clear()
            cut = len(self._mutlog)
        del self._mutlog[:cut]
        for entry in self._shape_cache.values():
            entry[0] -= cut

    def invalidate(self, host: Optional[int] = None) -> None:
        """Mark cached derived quantities stale.

        Call after mutating the state arrays directly (e.g. editing
        ``cap_cpu`` in a test rig).  ``host=None`` invalidates every
        host.  ``deploy``/``remove``/``kill_host`` do this themselves.
        """
        if host is None:
            self._dirty_all = True
            self._cand_dirty_all = True
            self._shape_cache.clear()
            self._mutlog.clear()
        else:
            self._touch(host)
        self.total_alloc_cpu = float(self.alloc_cpu.sum())
        self._recount_mem()

    def _account_mem(self, old: float, new: float) -> None:
        """Fold one host's ``alloc_mem`` change into the running total.

        ``old``/``new`` are the host's value before/after the mutation.
        Values that are not exact multiples of the fixed-point unit
        drop the accumulator into the permanent ``np.sum`` fallback
        (see :attr:`total_alloc_mem`).
        """
        if not self._mem_exact:
            return
        old_scaled = old * _MEM_SCALE
        new_scaled = new * _MEM_SCALE
        if old_scaled.is_integer() and new_scaled.is_integer():
            self._mem_scaled += int(new_scaled) - int(old_scaled)
        else:
            self._mem_exact = False

    def _recount_mem(self) -> None:
        """Rebuild the exact memory total from ``alloc_mem`` (O(hosts)).

        Called by :meth:`invalidate`, which already pays an O(hosts)
        CPU recount; per-event accounting goes through
        :meth:`_account_mem` instead.
        """
        self._mem_exact = True
        total = 0
        for value in self.alloc_mem.tolist():
            scaled = value * _MEM_SCALE
            if not scaled.is_integer():
                self._mem_exact = False
                return
            total += int(scaled)
        self._mem_scaled = total

    @property
    def total_alloc_mem(self) -> float:
        """Cluster-wide allocated memory, bit-equal to ``alloc_mem.sum()``.

        O(1) on the exact fixed-point path; falls back to the full
        pairwise ``np.sum`` when any per-host value ever left the
        fixed-point grid or the total exceeds the exact-float range.
        """
        if self._mem_exact and 0 <= self._mem_scaled < _MEM_EXACT_LIMIT:
            return self._mem_scaled / _MEM_SCALE
        return float(self.alloc_mem.sum())

    def _sync(self) -> None:
        """Bring the derived caches up to date with the state arrays."""
        if self._dirty_all:
            self._refresh_all()
            self._dirty_all = False
            self._dirty.clear()
            return
        if not self._dirty:
            return
        if len(self._dirty) * _BULK_REFRESH_FRACTION > self.num_hosts:
            self._refresh_all()
        else:
            for j in sorted(self._dirty):
                self._refresh_host(j)
        self._dirty.clear()

    def _sync_cand(self) -> None:
        """Bring the candidate masks up to date (first-fit path only)."""
        self._sync()
        if self._cand_dirty_all:
            self._refresh_cand_all()
            self._cand_dirty_all = False
            self._cand_dirty.clear()
            return
        if not self._cand_dirty:
            return
        if len(self._cand_dirty) * _BULK_REFRESH_FRACTION > self.num_hosts:
            self._refresh_cand_all()
        else:
            for j in sorted(self._cand_dirty):
                self._refresh_cand_host(j)
        self._cand_dirty.clear()

    def _refresh_all(self) -> None:
        """Vectorized cache rebuild (startup, bulk invalidation).

        Applies the same elementwise operations as
        :meth:`_refresh_host`, so both paths produce bit-identical
        caches.
        """
        np.subtract(self.cap_cpu, self.alloc_cpu, out=self._free_cpu)
        np.subtract(self.cap_mem, self.alloc_mem, out=self._free_mem_tol)
        np.add(self._free_mem_tol, _EPS, out=self._free_mem_tol)
        np.divide(self.cap_mem, self.cap_cpu, out=self._target)
        busy = self.alloc_cpu > 0
        self._mc_current[:] = np.where(
            busy, self.alloc_mem / np.where(busy, self.alloc_cpu, 1.0), self._target
        )
        np.subtract(self._mc_current, self._target, out=self._mc_dev)
        np.abs(self._mc_dev, out=self._mc_dev)
        np.divide(self.alloc_cpu, self.cap_cpu, out=self._load_factor)
        np.add(self._load_factor, 1.0, out=self._load_factor)
        ratios_col = self.ratios[:, None]
        np.multiply(self.vnode_cpus, ratios_col, out=self._pool_slack)
        np.subtract(self._pool_slack, self.vnode_vcpus, out=self._pool_slack)
        for li in range(len(self.ratios)):
            best = np.full(self.num_hosts, -np.inf)
            for lj in self._stricter_levels[li]:
                np.maximum(
                    best,
                    np.where(self.supported[lj], self._pool_slack[lj], -np.inf),
                    out=best,
                )
            self._pool_max_slack[li] = best

    def _refresh_host(self, j: int) -> None:
        """Scalar cache refresh of one dirty host (the per-event path).

        Reads are converted to python floats once: python-float IEEE
        arithmetic is bit-identical to the numpy elementwise ops of
        :meth:`_refresh_all` and several times faster than chained
        ``np.float64`` scalar operations.
        """
        base = self._base
        cap_c = base.item(_R_CAP_CPU, j)
        cap_m = base.item(_R_CAP_MEM, j)
        ac = base.item(_R_ALLOC_CPU, j)
        am = base.item(_R_ALLOC_MEM, j)
        base[_R_FREE_CPU, j] = cap_c - ac
        base[_R_FREE_MEM_TOL, j] = (cap_m - am) + _EPS
        tgt = cap_m / cap_c
        base[_R_TARGET, j] = tgt
        cur = am / ac if ac > 0 else tgt
        self._mc_current[j] = cur
        base[_R_MC_DEV, j] = abs(cur - tgt)
        base[_R_LOAD, j] = ac / cap_c + 1.0
        lvl = self._lvl
        supported = self.supported
        slacks = []
        for li in self._level_range:
            slack = (
                lvl.item(li, _LR_CPUS, j) * self._ratio_vals[li]
                - lvl.item(li, _LR_VCPUS, j)
            )
            slacks.append(slack)
            self._pool_slack[li, j] = slack
        for li in self._level_range:
            best = -math.inf
            for lj in self._stricter_levels[li]:
                if slacks[lj] > best and supported.item(lj, j):
                    best = slacks[lj]
            lvl[li, _LR_MAX_SLACK, j] = best

    def _refresh_cand_all(self) -> None:
        """Vectorized candidate-mask rebuild (first-fit path)."""
        ratios_col = self.ratios[:, None]
        min_growth = np.ceil((self.vnode_vcpus + 1.0) / ratios_col)
        np.subtract(min_growth, self.vnode_cpus, out=min_growth)
        np.maximum(min_growth, 0.0, out=min_growth)
        mem_possible = self._free_mem_tol > 0.0
        pooling = self.config.pooling
        for li in range(len(self.ratios)):
            own = (
                self.supported[li]
                & (min_growth[li] <= self._free_cpu)
                & mem_possible
            )
            if pooling and self.ratios[li] > 1 and self._stricter_levels[li]:
                own |= (
                    self.supported[li]
                    & mem_possible
                    & (self._pool_max_slack[li] >= 1.0)
                )
            self._cand[li] = own
        if self._prune is not None:
            self._prune.rebuild_cand_counts(self._cand)

    def _refresh_cand_host(self, j: int) -> None:
        """Scalar candidate-mask refresh of one dirty host."""
        fc = float(self._free_cpu[j])
        mem_possible = self._free_mem_tol[j] > 0.0
        pooling = self.config.pooling
        prune = self._prune
        for li in range(len(self.ratios)):
            r = float(self.ratios[li])
            mg = (
                math.ceil((float(self.vnode_vcpus[li, j]) + 1.0) / r)
                - float(self.vnode_cpus[li, j])
            )
            cand = bool(self.supported[li, j]) and mem_possible and mg <= fc
            if (
                not cand
                and pooling
                and r > 1
                and self.supported[li, j]
                and mem_possible
                and self._pool_max_slack[li, j] >= 1.0
            ):
                cand = True
            if prune is not None:
                prune.adjust_cand_bit(li, j, bool(self._cand[li, j]), cand)
            self._cand[li, j] = cand

    @property
    def num_hosts(self) -> int:
        return len(self.machines)

    def level_index(self, ratio: float) -> int:
        """Index of the configured level with this ratio.

        Exact matches hit a dict; anything else is resolved within a
        relative tolerance, so computed ratios that picked up float
        noise (``9.0 / 3.0``-style ``2.9999999999``) still find their
        level instead of raising :class:`ConfigError`.
        """
        try:
            return self._level_index[ratio]
        except KeyError:
            pass
        close = np.flatnonzero(
            np.isclose(self.ratios, ratio, rtol=_LEVEL_RTOL, atol=_LEVEL_RTOL)
        )
        if close.size:
            return int(close[0])
        raise ConfigError(f"level {ratio}:1 is not configured")

    def _vm_level_index(self, vm: VMRequest) -> int:
        """Level index of a VM, validating the memory ratio too."""
        li = self.level_index(vm.level.ratio)
        if floats_differ(vm.level.mem_ratio, float(self.mem_ratios[li])):
            raise ConfigError(
                f"VM {vm.vm_id} requests level {vm.level.name} but the cluster "
                f"offers mem ratio {self.mem_ratios[li]:g}:1 at {vm.level.ratio:g}:1"
            )
        return li

    # -- admission (vectorized across hosts) --------------------------------

    def feasibility(self, vm: VMRequest) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-host admission data for ``vm``.

        Returns ``(feasible, growth, own_ok)`` where ``growth`` is the
        CPUs the VM's own-level vNode must acquire on each host and
        ``own_ok`` marks hosts where the own-level path (rather than
        §V-B pooling) applies.  Mirrors ``LocalScheduler.plan``.

        The incremental kernel returns views into scratch buffers,
        valid until the next ``feasibility()`` call on this cluster.
        """
        if self.kernel == "naive":
            return refkernel.naive_feasibility(self, vm)
        li = self._vm_level_index(vm)
        self._sync()
        self._feasibility_block(vm, li, slice(0, self.num_hosts))
        return self._fb_feasible, self._fb_growth, self._fb_own

    def _feasibility_block(self, vm: VMRequest, li: int, sl: slice) -> np.ndarray:
        """Exact feasibility of the hosts in ``sl``, into scratch views.

        Every operation is elementwise in the host dimension (pooling
        reduces over *levels*), so evaluating a block produces the same
        verdicts as evaluating the whole cluster — which is what makes
        the first-fit block scan sound.
        """
        r = self.ratios[li]
        v = float(vm.spec.vcpus)
        m = vm.spec.mem_gb
        f1 = self._fb_f1[sl]
        growth = self._fb_growth[sl]
        own_ok = self._fb_own[sl]
        feasible = self._fb_feasible[sl]
        b1 = self._fb_b1[sl]
        b2 = self._fb_b2[sl]
        # growth = max(0, ceil((vnode_vcpus[li] + v) / r) - vnode_cpus[li])
        np.add(self.vnode_vcpus[li, sl], v, out=f1)
        np.divide(f1, r, out=f1)
        np.ceil(f1, out=f1)
        np.subtract(f1, self.vnode_cpus[li, sl], out=f1)
        np.maximum(f1, 0.0, out=growth)
        # own_ok = supported & (own mem fits) & (growth fits free CPUs)
        np.less_equal(m / self.mem_ratios[li], self._free_mem_tol[sl], out=b1)
        np.less_equal(growth, self._free_cpu[sl], out=b2)
        np.logical_and(self.supported[li, sl], b1, out=own_ok)
        np.logical_and(own_ok, b2, out=own_ok)
        np.copyto(feasible, own_ok)
        if self.config.pooling and vm.level.ratio > 1:
            rows = self._stricter_levels[li]
            if rows and self._uniform_mem:
                # One memory ratio everywhere: each stricter level's
                # memory check equals the own-level one (b1), and the
                # per-level slack disjunction collapses to a single
                # comparison against the cached per-host max slack
                # (``max(slack) >= v`` iff ``any(slack_j >= v)``).
                acc = self._fb_pool_acc[sl]
                np.greater_equal(self._pool_max_slack[li, sl], v, out=acc)
                np.logical_and(acc, b1, out=acc)
                # Pooling also requires the VM's own level to be part of
                # the host's offer (mirrors LocalScheduler.supports).
                np.logical_and(acc, self.supported[li, sl], out=acc)
                np.logical_or(feasible, acc, out=feasible)
            elif rows:
                acc = self._fb_pool_acc[sl]
                tmp = self._fb_pool_tmp[sl]
                mem_ok = self._fb_pool_mem[sl]
                first = True
                for lj in rows:
                    np.greater_equal(self._pool_slack[lj, sl], v, out=tmp)
                    np.less_equal(m / self.mem_ratios[lj], self._free_mem_tol[sl], out=mem_ok)
                    np.logical_and(tmp, mem_ok, out=tmp)
                    np.logical_and(tmp, self.supported[lj, sl], out=tmp)
                    if first:
                        np.copyto(acc, tmp)
                        first = False
                    else:
                        np.logical_or(acc, tmp, out=acc)
                # Pooling also requires the VM's own level to be part of
                # the host's offer (mirrors LocalScheduler.supports).
                np.logical_and(acc, self.supported[li, sl], out=acc)
                np.logical_or(feasible, acc, out=feasible)
        return feasible

    def first_feasible(self, vm: VMRequest) -> Optional[int]:
        """Lowest-index host that can admit ``vm``; None if nobody can.

        Matches ``argmax(where(feasible, -idx, -inf))`` exactly, but
        short-circuits: the cached per-level candidate mask skips
        blocks with no possibly-feasible host, and the scan stops at
        the first block containing an exactly-feasible one.
        """
        li = self._vm_level_index(vm)
        if self.kernel == "naive":
            feasible, _g, _o = refkernel.naive_feasibility(self, vm)
            return int(np.argmax(feasible)) if feasible.any() else None
        if self.kernel == "pruned":
            return prunekernel.pruned_first_feasible(self, vm)
        self._sync_cand()
        cand = self._cand[li]
        n = self.num_hosts
        for lo in range(0, n, FIRST_FIT_CHUNK):
            hi = min(lo + FIRST_FIT_CHUNK, n)
            if not cand[lo:hi].any():
                continue
            feasible = self._feasibility_block(vm, li, slice(lo, hi))
            if feasible.any():
                return lo + int(np.argmax(feasible))
        return None

    def select_best(self, feasible: np.ndarray, vm: VMRequest, policy: str) -> int:
        """Best feasible host under ``policy`` (lowest index wins ties).

        Identical to ``argmax(where(feasible, scores(vm, policy),
        -inf))`` but masks in place on the score scratch buffer, so the
        selection allocates nothing.  ``feasible`` must have at least
        one True entry.
        """
        scores = self.scores(vm, policy)
        if self.kernel == "naive":
            return int(np.argmax(np.where(feasible, scores, -np.inf)))
        np.logical_not(feasible, out=self._sel_not)
        np.copyto(scores, -np.inf, where=self._sel_not)
        return int(np.argmax(scores))

    def select(self, vm: VMRequest, policy: str) -> Optional[int]:
        """Best feasible host for ``vm`` under ``policy``; None if none.

        Semantically ``select_best(feasibility(vm)[0], vm, policy)``
        guarded by ``feasible.any()`` (or ``first_feasible`` for
        first-fit), but scored policies go through a per-shape cache:
        catalog workloads re-request the same few (level, vcpus, mem)
        shapes over and over, and a shape's masked score vector
        ``where(feasible, scores, -inf)`` only changes on hosts
        deployed to / removed from since its previous arrival.  The
        cache therefore refreshes just the hosts recorded in the
        mutation log since the shape's last sync — with the exact
        elementwise operations of the full pipeline, so the selection
        is bit-identical to the uncached path.  Scores are finite on
        every host (capacities are positive), so the argmax landing on
        -inf is exactly the "no feasible host" case.
        """
        if self.kernel == "pruned":
            return prunekernel.pruned_select(self, vm, policy)
        if policy == "first_fit":
            return self.first_feasible(vm)
        if self.kernel == "naive" or not self._uniform_mem:
            feasible, _growth, _own = self.feasibility(vm)
            if not feasible.any():
                return None
            return self.select_best(feasible, vm, policy)
        li = self._vm_level_index(vm)
        # vm.level.ratio participates in the key because the pooling
        # trigger compares the *raw* ratio against 1, which can differ
        # from the resolved level's for ratios within _LEVEL_RTOL of it.
        key = (li, vm.level.ratio, vm.spec.vcpus, vm.spec.mem_gb, policy)
        entry = self._shape_cache.get(key)
        pos = len(self._mutlog)
        if entry is None:
            if len(self._shape_cache) >= _SHAPE_CACHE_CAP:
                feasible, _growth, _own = self.feasibility(vm)
                if not feasible.any():
                    return None
                return self.select_best(feasible, vm, policy)
            entry = [pos, self._masked_scores(vm, li, policy, None)]
            self._shape_cache[key] = entry
        elif entry[0] < pos:
            touched = self._mutlog[entry[0] : pos]
            if len(touched) * 4 >= self.num_hosts:
                self._masked_scores(vm, li, policy, entry[1])
            else:
                self._sync()
                idx = np.fromiter(sorted(set(touched)), dtype=np.intp)
                self._refresh_shape(entry[1], idx, vm, li, policy)
            entry[0] = pos
        masked = entry[1]
        j = masked.argmax()
        best = masked.item(j)
        if math.isinf(best) and best < 0:
            return None
        return int(j)

    def _masked_scores(
        self, vm: VMRequest, li: int, policy: str, out: Optional[np.ndarray]
    ) -> np.ndarray:
        """``where(feasible, scores, -inf)`` over the whole cluster.

        The shape-cache (re)build path; allocates a fresh array when
        ``out`` is None, otherwise fills ``out`` with the same bits.
        """
        self._sync()
        feasible = self._feasibility_block(vm, li, slice(0, self.num_hosts))
        scores = self.scores(vm, policy)
        if out is None:
            return np.where(feasible, scores, -np.inf)
        np.logical_not(feasible, out=self._sel_not)
        np.copyto(out, scores)
        np.copyto(out, -np.inf, where=self._sel_not)
        return out

    def _refresh_shape(
        self,
        masked: np.ndarray,
        idx: np.ndarray,
        vm: VMRequest,
        li: int,
        policy: str,
    ) -> None:
        """Recompute a shape's masked scores for the hosts in ``idx``.

        Gathers every per-host input in two fancy indexes (the packed
        ``_base``/``_lvl`` layout exists for this) and applies the
        exact elementwise operations of ``_feasibility_block`` and
        ``scores`` to the subset, so every refreshed entry carries the
        same bits a full rebuild would produce — and the untouched
        entries already do, since their inputs are unchanged.  Callers
        guarantee ``_uniform_mem`` (fused pooling) and a synced cache.
        """
        base = self._base[:, idx]
        lvl = self._lvl[li][:, idx]
        sup = self.supported[li, idx]
        r = self.ratios[li]
        v = float(vm.spec.vcpus)
        m = vm.spec.mem_gb
        # Feasibility: own level, then fused §V-B pooling.  The gathered
        # rows are private copies, so chains may clobber them in place.
        g = lvl[_LR_VCPUS]
        np.add(g, v, out=g)
        np.divide(g, r, out=g)
        np.ceil(g, out=g)
        np.subtract(g, lvl[_LR_CPUS], out=g)
        np.maximum(g, 0.0, out=g)
        b1 = np.less_equal(m / self.mem_ratios[li], base[_R_FREE_MEM_TOL])
        feasible = np.less_equal(g, base[_R_FREE_CPU])
        np.logical_and(feasible, b1, out=feasible)
        np.logical_and(feasible, sup, out=feasible)
        if self.config.pooling and vm.level.ratio > 1 and self._stricter_levels[li]:
            acc = np.greater_equal(lvl[_LR_MAX_SLACK], v)
            np.logical_and(acc, b1, out=acc)
            np.logical_and(acc, sup, out=acc)
            np.logical_or(feasible, acc, out=feasible)
        # Scores (mirrors ``scores()`` per policy).
        vm_cpu = vm.spec.vcpus / self.ratios[li]
        vm_mem = vm.spec.mem_gb / self.mem_ratios[li]
        if policy in ("best_fit", "worst_fit"):
            s = self._free_after_subset(base, vm_cpu, vm_mem)
            if policy == "best_fit":
                np.negative(s, out=s)
            np.add(s, base[_R_TIEBREAK], out=s)
        elif policy in ("progress", "progress_no_factor", "progress_bestfit"):
            s = np.add(base[_R_ALLOC_MEM], vm_mem)
            f2 = np.add(base[_R_ALLOC_CPU], vm_cpu)
            np.divide(s, f2, out=s)
            np.subtract(s, base[_R_TARGET], out=s)
            np.abs(s, out=s)
            np.subtract(base[_R_MC_DEV], s, out=s)
            if policy != "progress_no_factor":
                np.multiply(s, base[_R_LOAD], out=f2)
                np.copyto(s, f2, where=np.less(s, 0.0))
            if policy == "progress_bestfit":
                f2 = self._free_after_subset(base, vm_cpu, vm_mem)
                np.negative(f2, out=f2)
                np.multiply(f2, _BESTFIT_BLEND, out=f2)
                np.add(s, f2, out=s)
            np.add(s, base[_R_TIEBREAK], out=s)
        else:  # unreachable: cache entries are created via scores()
            raise ConfigError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        masked[idx] = np.where(feasible, s, -np.inf)

    @staticmethod
    def _free_after_subset(base: np.ndarray, vm_cpu, vm_mem) -> np.ndarray:
        """Subset analogue of :meth:`_free_after` on gathered rows."""
        o = np.add(base[_R_ALLOC_CPU], vm_cpu)
        np.subtract(base[_R_CAP_CPU], o, out=o)
        np.divide(o, base[_R_CAP_CPU], out=o)
        t = np.add(base[_R_ALLOC_MEM], vm_mem)
        np.subtract(base[_R_CAP_MEM], t, out=t)
        np.divide(t, base[_R_CAP_MEM], out=t)
        np.add(o, t, out=o)
        return o

    def deploy(self, vm: VMRequest, host: int) -> PlacementRecord:
        """Place ``vm`` on ``host`` (own-level first, §V-B pooling fallback)."""
        if self.kernel == "naive":
            return refkernel.naive_deploy(self, vm, host)
        li = self._vm_level_index(vm)
        r = self._ratio_vals[li]
        v = vm.spec.vcpus
        m = vm.spec.mem_gb
        if vm.vm_id in self._placements:
            raise CapacityError(f"VM {vm.vm_id} already placed")
        am = self.alloc_mem.item(host)
        free_mem = self.cap_mem.item(host) - am
        vv = self.vnode_vcpus.item(li, host)
        vc = self.vnode_cpus.item(li, host)
        ac = self.alloc_cpu.item(host)
        required = math.ceil((vv + v) / r)
        growth = max(0.0, required - vc)
        own_mem = m / self._mem_ratio_vals[li]
        if not self.supported.item(li, host):
            raise CapacityError(
                f"host {host} does not offer level {vm.level.name}"
            )
        if (
            growth <= self.cap_cpu.item(host) - ac
            and own_mem <= free_mem + _EPS
        ):
            self.vnode_cpus[li, host] = vc + growth
            self.vnode_vcpus[li, host] = vv + v
            self.alloc_cpu[host] = ac + growth
            self.alloc_mem[host] = am + own_mem
            self.total_alloc_cpu += growth
            self._account_mem(am, am + own_mem)
            self._placements[vm.vm_id] = (host, li, v, m)
            self._requests[vm.vm_id] = vm
            self._touch(host)
            if self.recorder is not None and self.recorder.enabled:
                self.recorder.record_admission(
                    AdmissionRecord(
                        vm_id=vm.vm_id,
                        host=self.machines[host].name,
                        hosted_ratio=vm.level.ratio,
                        growth=int(growth),
                        pooled=False,
                    )
                )
            return PlacementRecord(vm.vm_id, host, vm.level.ratio, pooled=False)
        if self.config.pooling and vm.level.ratio > 1:
            # Loosest stricter oversubscribed vNode with enough slack
            # (mirrors LocalScheduler._pooling_candidate).
            best = None
            for lj in self._level_range:
                rj = self._ratio_vals[lj]
                if not (1 < rj < vm.level.ratio):
                    continue
                slack = (
                    self.vnode_cpus.item(lj, host) * rj
                    - self.vnode_vcpus.item(lj, host)
                )
                if (
                    self.supported.item(lj, host)
                    and slack >= v
                    and m / self._mem_ratio_vals[lj] <= free_mem + _EPS
                    and (best is None or rj > self._ratio_vals[best])
                ):
                    best = lj
            if best is not None:
                self.vnode_vcpus[best, host] += v
                new_am = am + m / self._mem_ratio_vals[best]
                self.alloc_mem[host] = new_am
                self._account_mem(am, new_am)
                self._placements[vm.vm_id] = (host, best, v, m)
                self._requests[vm.vm_id] = vm
                self._touch(host)
                if self.recorder is not None and self.recorder.enabled:
                    self.recorder.record_admission(
                        AdmissionRecord(
                            vm_id=vm.vm_id,
                            host=self.machines[host].name,
                            hosted_ratio=self._ratio_vals[best],
                            growth=0,
                            pooled=True,
                        )
                    )
                return PlacementRecord(
                    vm.vm_id, host, self._ratio_vals[best], pooled=True
                )
        raise CapacityError(f"host {host} cannot take VM {vm.vm_id}")

    def remove(self, vm_id: str) -> None:
        if self.kernel == "naive":
            return refkernel.naive_remove(self, vm_id)
        try:
            host, li, v, m = self._placements.pop(vm_id)
        except KeyError:
            raise CapacityError(f"VM {vm_id} is not placed") from None
        self._requests.pop(vm_id, None)
        r = self._ratio_vals[li]
        vv = self.vnode_vcpus.item(li, host) - v
        self.vnode_vcpus[li, host] = vv
        required = 0.0 if vv == 0 else math.ceil(vv / r)
        release = self.vnode_cpus.item(li, host) - required
        self.vnode_cpus[li, host] = required
        self.alloc_cpu[host] = self.alloc_cpu.item(host) - release
        self.total_alloc_cpu -= release
        old_am = self.alloc_mem.item(host)
        am = old_am - m / self._mem_ratio_vals[li]
        if am < _EPS:
            am = 0.0
        self.alloc_mem[host] = am
        self._account_mem(old_am, am)
        self._touch(host)

    def kill_host(self, host: int) -> None:
        """Permanently fail a (drained) host: no capacity remains.

        Uses an epsilon rather than zero so ratio-based scores stay
        finite (the capacity filter already excludes the host
        regardless).  Keeps the derived caches coherent — use this
        instead of zeroing ``cap_*`` by hand.
        """
        self.cap_cpu[host] = 1e-12
        self.cap_mem[host] = 1e-12
        self.physical_cpu[host] = 1e-12
        self._touch(host)

    def set_effective_capacity(self, eff: np.ndarray) -> None:
        """Override the CPU capacities the kernels schedule against.

        ``eff`` is a per-host effective-capacity vector (physical
        cores), typically produced by a
        :class:`repro.oversub.estimators.CapacityEstimator`.  Values
        above ``physical_cpu`` admit more reservations than the host
        physically has (dynamic oversubscription); values below
        restrict it.  Dead hosts (``kill_host``) keep their kill
        epsilon — an estimate cannot resurrect them — and a floor keeps
        ratio-based scores finite.  A write that changes nothing is a
        no-op, preserving the incremental kernel's caches (and the
        decision stream) bit-for-bit — this is what keeps ``StaticRatio``
        byte-identical to the golden traces.
        """
        eff = np.asarray(eff, dtype=float)
        if eff.shape != self.cap_cpu.shape:
            raise ConfigError(
                f"expected {self.cap_cpu.shape} effective capacities, got {eff.shape}"
            )
        alive = self.physical_cpu > _EPS
        target = np.where(alive, np.maximum(eff, 1e-12), self.cap_cpu)
        if np.array_equal(target, self.cap_cpu):
            return
        self.cap_cpu[:] = target
        self.invalidate()

    def placed_requests(self) -> Iterator[tuple[VMRequest, int]]:
        """(request, host) for every placed VM, in placement order."""
        for vm_id, placement in self._placements.items():
            yield self._requests[vm_id], placement[0]

    # -- scoring -------------------------------------------------------------

    def scores(self, vm: VMRequest, policy: str) -> np.ndarray:
        """Per-host scores (higher better), mirroring the object weighers.

        The incremental kernel returns a view into a scratch buffer,
        valid until the next ``scores()``/``select_best()`` call on
        this cluster.
        """
        if self.kernel == "naive":
            return refkernel.naive_scores(self, vm, policy)
        s = self._sc_scores
        if policy == "first_fit":
            np.copyto(s, self._neg_idx)
            return s
        li = self._vm_level_index(vm)
        self._sync()
        vm_cpu = vm.spec.vcpus / self.ratios[li]
        vm_mem = vm.spec.mem_gb / self.mem_ratios[li]
        f1 = self._sc_f1
        f2 = self._sc_f2
        if policy in ("best_fit", "worst_fit"):
            self._free_after(vm_cpu, vm_mem, f1, f2)
            if policy == "best_fit":
                np.negative(f1, out=f1)
            # primary * 1.0 is a bitwise no-op and is skipped.
            np.add(f1, self._tiebreak_term, out=s)
            return s
        if policy in ("progress", "progress_no_factor", "progress_bestfit"):
            # progress = |current - target| - |next - target|, with the
            # first term cached per host (_mc_dev).
            np.add(self.alloc_mem, vm_mem, out=f1)
            np.add(self.alloc_cpu, vm_cpu, out=f2)
            np.divide(f1, f2, out=f1)
            np.subtract(f1, self._target, out=f1)
            np.abs(f1, out=f1)
            np.subtract(self._mc_dev, f1, out=f1)
            if policy != "progress_no_factor":
                np.multiply(f1, self._load_factor, out=f2)
                np.less(f1, 0.0, out=self._sc_b1)
                np.copyto(f1, f2, where=self._sc_b1)
            if policy == "progress_bestfit":
                # The paper's suggested composition: the M/C incentive
                # alongside an existing packing rule (§VII-B2).
                self._free_after(vm_cpu, vm_mem, f2, self._sc_f3)
                np.negative(f2, out=f2)
                np.multiply(f2, _BESTFIT_BLEND, out=f2)
                np.add(f1, f2, out=f1)
            np.add(f1, self._tiebreak_term, out=s)
            return s
        raise ConfigError(f"unknown policy {policy!r}; expected one of {POLICIES}")

    def _free_after(self, vm_cpu, vm_mem, out: np.ndarray, tmp: np.ndarray) -> None:
        """Normalized free capacity after a hypothetical placement:
        ``(cap_cpu - (alloc_cpu + vm_cpu)) / cap_cpu + (cap_mem -
        (alloc_mem + vm_mem)) / cap_mem`` into ``out``."""
        np.add(self.alloc_cpu, vm_cpu, out=out)
        np.subtract(self.cap_cpu, out, out=out)
        np.divide(out, self.cap_cpu, out=out)
        np.add(self.alloc_mem, vm_mem, out=tmp)
        np.subtract(self.cap_mem, tmp, out=tmp)
        np.divide(tmp, self.cap_mem, out=tmp)
        np.add(out, tmp, out=out)

    # -- introspection --------------------------------------------------------

    def host_of(self, vm_id: str) -> int:
        try:
            return self._placements[vm_id][0]
        except KeyError:
            raise CapacityError(f"VM {vm_id} is not placed") from None

    def request_of(self, vm_id: str) -> VMRequest:
        try:
            return self._requests[vm_id]
        except KeyError:
            raise CapacityError(f"VM {vm_id} is not placed") from None

    def vms_on(self, host: int) -> list[str]:
        return [vm_id for vm_id, p in self._placements.items() if p[0] == host]

    @property
    def placed_vm_ids(self) -> tuple[str, ...]:
        return tuple(self._placements)

    def host_weight(self, host: int) -> float:
        """Normalized combined allocation of one host (0 = idle)."""
        return float(
            self.alloc_cpu[host] / self.cap_cpu[host]
            + self.alloc_mem[host] / self.cap_mem[host]
        )


class _VectorCapacityTarget:
    """:class:`repro.oversub.controller.CapacityTarget` port over a
    :class:`VectorCluster`."""

    def __init__(self, cluster: VectorCluster):
        self.cluster = cluster

    def placements(self) -> Iterator[tuple[VMRequest, int]]:
        return self.cluster.placed_requests()

    def physical_capacity(self) -> np.ndarray:
        return self.cluster.physical_cpu

    def allocated_capacity(self) -> np.ndarray:
        return self.cluster.alloc_cpu

    def apply_effective_capacity(self, eff: np.ndarray) -> None:
        self.cluster.set_effective_capacity(eff)


class VectorSimulation:
    """Run a workload through a :class:`VectorCluster` under a policy.

    ``kernel`` selects the placement kernel (see
    :data:`~repro.simulator.vectorpool.KERNELS`); the uninstrumented
    run loop additionally short-circuits ``first_fit`` selection and
    performs allocation-free masked selection for scored policies.
    """

    def __init__(
        self,
        machines: Sequence[MachineSpec],
        config: SlackVMConfig | None = None,
        policy: str = "progress",
        fail_fast: bool = False,
        host_levels: Sequence[Sequence[float]] | None = None,
        recorder: DecisionRecorder = NULL_RECORDER,
        metrics: MetricsRegistry = NULL_METRICS,
        kernel: str = "incremental",
        oversub: OversubParams | None = None,
    ):
        if policy not in POLICIES:
            raise ConfigError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        if kernel not in KERNELS:
            raise ConfigError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
        self.machines = list(machines)
        self.config = config or SlackVMConfig()
        self.policy = policy
        self.fail_fast = fail_fast
        self.host_levels = host_levels
        self.recorder = recorder
        self.metrics = metrics
        self.kernel = kernel
        self.oversub = oversub

    def run(self, workload: list[VMRequest]) -> SimulationResult:
        recording = self.recorder.enabled
        measuring = self.metrics.enabled
        cluster = VectorCluster(
            self.machines,
            self.config,
            self.host_levels,
            recorder=self.recorder if recording else None,
            kernel=self.kernel,
        )
        # The instrumented path keeps the full feasibility/score arrays
        # alive for the decision record; the fast path only needs the
        # selected host, so it can short-circuit.  The naive kernel
        # keeps the pre-change flow end to end (heap drain, allocating
        # np.where selection) so benchmarks measure the real baseline.
        fast = not recording and cluster.kernel != "naive"
        controller: Optional[OversubController] = None
        target: Optional[_VectorCapacityTarget] = None
        if self.oversub is not None:
            controller = self.oversub.build_controller(self.metrics)
            target = _VectorCapacityTarget(cluster)
        placements: dict[str, PlacementRecord] = {}
        rejections: list[str] = []
        timeline = Timeline()
        pooled = 0
        alive: set[str] = set()
        arrival_seq = 0
        if fast:
            # Batched drain: same-timestamp events are grouped into one
            # (departures, arrivals) dispatch so every departure of the
            # tick lands before the tick's first selection and the lazy
            # cache sync it triggers is paid once per batch, not once
            # per event.  Controller advancement and timeline samples
            # stay strictly per event — the batches only regroup the
            # dispatch, the observable stream is unchanged (and the
            # fail-fast break still precedes the rejected arrival's
            # timeline sample, exactly like the per-event loop).
            halted = False
            for departures, arrivals in iter_event_batches(
                workload_event_list(workload)
            ):
                for event in departures:
                    if controller is not None and target is not None:
                        controller.advance(target, event.time)
                    vm = event.vm
                    if vm.vm_id in alive:
                        cluster.remove(vm.vm_id)
                        alive.discard(vm.vm_id)
                        if measuring:
                            self.metrics.counter(metric_names.DEPARTURES).inc()
                    timeline.record(
                        event.time,
                        cluster.total_alloc_cpu,
                        cluster.total_alloc_mem,
                    )
                for event in arrivals:
                    if controller is not None and target is not None:
                        controller.advance(target, event.time)
                    vm = event.vm
                    t0 = perf_counter() if measuring else 0.0
                    host = cluster.select(vm, self.policy)
                    if measuring:
                        self.metrics.timer(metric_names.SELECT_S).observe(
                            perf_counter() - t0
                        )
                        self.metrics.counter(metric_names.ARRIVALS).inc()
                    if host is None:
                        rejections.append(vm.vm_id)
                        if measuring:
                            self.metrics.counter(metric_names.REJECTIONS).inc()
                        if self.fail_fast:
                            halted = True
                            break
                    else:
                        record = cluster.deploy(vm, host)
                        pooled += record.pooled
                        placements[vm.vm_id] = record
                        alive.add(vm.vm_id)
                        if measuring:
                            self.metrics.counter(metric_names.PLACEMENTS).inc()
                            if record.pooled:
                                self.metrics.counter(metric_names.POOLED).inc()
                    # Both running totals are bit-equal to the full
                    # array sums (integral CPU growth; fixed-point
                    # memory accounting — see VectorCluster.
                    # total_alloc_cpu / total_alloc_mem).
                    timeline.record(
                        event.time,
                        cluster.total_alloc_cpu,
                        cluster.total_alloc_mem,
                    )
                if halted:
                    break
        else:
            for event in workload_events(workload).drain():
                if controller is not None and target is not None:
                    controller.advance(target, event.time)
                vm = event.vm
                if event.kind is EventKind.ARRIVAL:
                    t0 = perf_counter() if measuring else 0.0
                    feasible, growth, _own = cluster.feasibility(vm)
                    any_feasible = bool(feasible.any())
                    scores = None
                    if any_feasible or recording:
                        scores = np.where(
                            feasible, cluster.scores(vm, self.policy), -np.inf
                        )
                    host = int(np.argmax(scores)) if any_feasible else None
                    if measuring:
                        self.metrics.timer(metric_names.SELECT_S).observe(
                            perf_counter() - t0
                        )
                        self.metrics.counter(metric_names.ARRIVALS).inc()
                    if host is None:
                        rejections.append(vm.vm_id)
                        if measuring:
                            self.metrics.counter(metric_names.REJECTIONS).inc()
                        if recording:
                            self._record(
                                event, arrival_seq, cluster, feasible, scores,
                                vm, None, None, None,
                            )
                        arrival_seq += 1
                        if self.fail_fast:
                            break
                    else:
                        record = cluster.deploy(vm, host)
                        pooled += record.pooled
                        placements[vm.vm_id] = record
                        alive.add(vm.vm_id)
                        if measuring:
                            self.metrics.counter(metric_names.PLACEMENTS).inc()
                            if record.pooled:
                                self.metrics.counter(metric_names.POOLED).inc()
                        if recording:
                            own_growth = 0 if record.pooled else int(growth[host])
                            self._record(
                                event, arrival_seq, cluster, feasible, scores,
                                vm, host, record, own_growth,
                            )
                        arrival_seq += 1
                else:
                    if vm.vm_id in alive:
                        cluster.remove(vm.vm_id)
                        alive.discard(vm.vm_id)
                        if measuring:
                            self.metrics.counter(metric_names.DEPARTURES).inc()
                timeline.record(
                    event.time,
                    float(cluster.alloc_cpu.sum()),
                    float(cluster.alloc_mem.sum()),
                )
        if measuring:
            self.metrics.gauge(metric_names.FINAL_ALLOC_CPU).set(float(cluster.alloc_cpu.sum()))
            self.metrics.gauge(metric_names.FINAL_ALLOC_MEM).set(float(cluster.alloc_mem.sum()))
        # With a dynamic estimator active, ``cap_cpu`` holds the last
        # effective override; the result reports the *physical* fleet.
        return SimulationResult(
            num_hosts=cluster.num_hosts,
            capacity_cpu=float(
                (cluster.physical_cpu if controller is not None else cluster.cap_cpu).sum()
            ),
            capacity_mem=float(cluster.cap_mem.sum()),
            placements=placements,
            rejections=rejections,
            timeline=timeline,
            pooled_placements=pooled,
            oversub=controller.summary() if controller is not None else None,
        )

    def _record(
        self, event, seq, cluster, feasible, scores, vm, host, placement, growth
    ) -> None:
        """Emit one DecisionRecord for an arrival (instrumented path only).

        Filter names mirror the object path's
        ``LevelSupportFilter``/``CapacityFilter`` verdicts so the two
        decision streams diff field-by-field in the audit tool.
        """
        li = cluster.level_index(vm.level.ratio)
        decisions = []
        for j in range(cluster.num_hosts):
            supported = bool(cluster.supported[li, j])
            eligible = bool(feasible[j])
            verdicts = {
                "LevelSupportFilter": supported,
                "CapacityFilter": eligible,
            }
            if eligible:
                score = float(scores[j])
                decisions.append(
                    HostDecision(j, True, verdicts, {"policy": score}, score)
                )
            else:
                decisions.append(HostDecision(j, False, verdicts))
        if placement is None:
            admission, hosted_ratio = ADMISSION_REJECTED, None
        elif placement.pooled:
            admission, hosted_ratio = ADMISSION_POOLED, placement.hosted_ratio
        else:
            admission, hosted_ratio = ADMISSION_GROWTH, placement.hosted_ratio
        if self.metrics.enabled:
            self.metrics.histogram(metric_names.CANDIDATES).observe(int(feasible.sum()))
        self.recorder.record_decision(
            DecisionRecord(
                seq=seq,
                time=event.time,
                vm_id=vm.vm_id,
                scheduler=f"vector:{self.policy}",
                hosts=tuple(decisions),
                chosen=host,
                admission=admission,
                hosted_ratio=hosted_ratio,
                growth=growth,
            )
        )
