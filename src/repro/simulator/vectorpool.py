"""Vectorized simulation engine (fast path).

Implements *exactly* the same admission and accounting semantics as the
object path (:class:`~repro.localsched.agent.LocalScheduler` +
:class:`~repro.scheduling.global_scheduler.ScoreBasedScheduler`) but
keeps the whole cluster state in numpy arrays, so filtering and scoring
all hosts for a placement is a handful of vector operations instead of
a Python loop.  The equivalence is enforced by property tests in
``tests/simulator/test_equivalence.py`` — both engines must produce
identical placements on random workloads.

Following the hpc-parallel guidance, this is the profiled hot path of
the repository: Figures 3 and 4 run hundreds of cluster-sizing
simulations through this engine.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from repro.core.config import SlackVMConfig
from repro.core.errors import CapacityError, ConfigError
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.records import (
    ADMISSION_GROWTH,
    ADMISSION_POOLED,
    ADMISSION_REJECTED,
    AdmissionRecord,
    DecisionRecord,
    DecisionRecorder,
    HostDecision,
    NULL_RECORDER,
)
from repro.scheduling.constants import BESTFIT_BLEND, TIEBREAK_WEIGHT
from repro.simulator.engine import PlacementRecord, SimulationResult, Timeline
from repro.simulator.events import EventKind, workload_events

__all__ = ["VectorCluster", "VectorSimulation", "POLICIES"]

#: Scheduling policies understood by the vector engine; mirrors
#: :mod:`repro.scheduling.baselines`.
POLICIES = (
    "first_fit",
    "best_fit",
    "worst_fit",
    "progress",
    "progress_no_factor",
    "progress_bestfit",
)

# Shared with the object-path schedulers via repro.scheduling.constants,
# so the two engines cannot drift apart silently.
_TIEBREAK = TIEBREAK_WEIGHT
_BESTFIT_BLEND = BESTFIT_BLEND

#: Relative tolerance for resolving a computed level ratio to a
#: configured level (e.g. ``2.9999999999`` → the 3:1 level).
_LEVEL_RTOL = 1e-9


class VectorCluster:
    """Array-backed state of every host's vNodes."""

    def __init__(
        self,
        machines: Sequence[MachineSpec],
        config: SlackVMConfig,
        host_levels: Sequence[Sequence[float]] | None = None,
        recorder: Optional[DecisionRecorder] = None,
    ):
        """``host_levels`` optionally restricts each host to a subset of
        the configured level ratios (dedicated PMs in a mixed fleet);
        ``None`` means every host offers every configured level.
        ``recorder`` mirrors :class:`LocalScheduler`'s admission sink:
        when set and enabled, every deploy emits an
        :class:`~repro.obs.records.AdmissionRecord`."""
        if not machines:
            raise ConfigError("a cluster needs at least one machine")
        self.config = config
        self.machines = list(machines)
        self.recorder = recorder
        n = len(machines)
        self.cap_cpu = np.array([m.cpus for m in machines], dtype=float)
        self.cap_mem = np.array([m.mem_gb for m in machines], dtype=float)
        self.alloc_cpu = np.zeros(n, dtype=float)  # reserved CPUs (integral values)
        self.alloc_mem = np.zeros(n, dtype=float)
        self.ratios = np.array([lv.ratio for lv in config.levels], dtype=float)
        self.mem_ratios = np.array([lv.mem_ratio for lv in config.levels], dtype=float)
        L = len(self.ratios)
        self.vnode_cpus = np.zeros((L, n), dtype=float)
        self.vnode_vcpus = np.zeros((L, n), dtype=float)
        self._level_index = {lv.ratio: i for i, lv in enumerate(config.levels)}
        if host_levels is None:
            self.supported = np.ones((L, n), dtype=bool)
        else:
            if len(host_levels) != n:
                raise ConfigError(
                    f"host_levels has {len(host_levels)} entries for {n} hosts"
                )
            self.supported = np.zeros((L, n), dtype=bool)
            for j, ratios in enumerate(host_levels):
                for ratio in ratios:
                    self.supported[self.level_index(float(ratio)), j] = True
            if not self.supported.any(axis=0).all():
                raise ConfigError("every host must support at least one level")
        # vm_id -> (host, hosted level index, vcpus, mem)
        self._placements: dict[str, tuple[int, int, int, float]] = {}
        # vm_id -> original request (needed to re-place, e.g. migration)
        self._requests: dict[str, VMRequest] = {}

    @property
    def num_hosts(self) -> int:
        return len(self.machines)

    def level_index(self, ratio: float) -> int:
        """Index of the configured level with this ratio.

        Exact matches hit a dict; anything else is resolved within a
        relative tolerance, so computed ratios that picked up float
        noise (``9.0 / 3.0``-style ``2.9999999999``) still find their
        level instead of raising :class:`ConfigError`.
        """
        try:
            return self._level_index[ratio]
        except KeyError:
            pass
        close = np.flatnonzero(
            np.isclose(self.ratios, ratio, rtol=_LEVEL_RTOL, atol=_LEVEL_RTOL)
        )
        if close.size:
            return int(close[0])
        raise ConfigError(f"level {ratio}:1 is not configured")

    def _vm_level_index(self, vm: VMRequest) -> int:
        """Level index of a VM, validating the memory ratio too."""
        li = self.level_index(vm.level.ratio)
        if vm.level.mem_ratio != self.mem_ratios[li]:
            raise ConfigError(
                f"VM {vm.vm_id} requests level {vm.level.name} but the cluster "
                f"offers mem ratio {self.mem_ratios[li]:g}:1 at {vm.level.ratio:g}:1"
            )
        return li

    # -- admission (vectorized across hosts) --------------------------------

    def feasibility(self, vm: VMRequest) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-host admission data for ``vm``.

        Returns ``(feasible, growth, own_ok)`` where ``growth`` is the
        CPUs the VM's own-level vNode must acquire on each host and
        ``own_ok`` marks hosts where the own-level path (rather than
        §V-B pooling) applies.  Mirrors ``LocalScheduler.plan``.
        """
        li = self._vm_level_index(vm)
        r = self.ratios[li]
        v = vm.spec.vcpus
        m = vm.spec.mem_gb
        free_mem = self.cap_mem - self.alloc_mem
        own_mem_ok = m / self.mem_ratios[li] <= free_mem + 1e-9
        required = np.ceil((self.vnode_vcpus[li] + v) / r)
        growth = np.maximum(0.0, required - self.vnode_cpus[li])
        own_ok = (
            self.supported[li]
            & own_mem_ok
            & (growth <= self.cap_cpu - self.alloc_cpu)
        )
        feasible = own_ok.copy()
        if self.config.pooling and vm.level.ratio > 1:
            stricter = (self.ratios > 1) & (self.ratios < vm.level.ratio)
            if stricter.any():
                slack = (
                    self.vnode_cpus[stricter] * self.ratios[stricter, None]
                    - self.vnode_vcpus[stricter]
                )
                mem_ok = (
                    m / self.mem_ratios[stricter, None] <= free_mem[None, :] + 1e-9
                )
                # Pooling also requires the VM's own level to be part of
                # the host's offer (mirrors LocalScheduler.supports).
                pool_ok = (
                    self.supported[li]
                    & ((slack >= v) & mem_ok & self.supported[stricter]).any(axis=0)
                )
                feasible |= pool_ok
        return feasible, growth, own_ok

    def deploy(self, vm: VMRequest, host: int) -> PlacementRecord:
        """Place ``vm`` on ``host`` (own-level first, §V-B pooling fallback)."""
        li = self._vm_level_index(vm)
        r = self.ratios[li]
        v = vm.spec.vcpus
        m = vm.spec.mem_gb
        if vm.vm_id in self._placements:
            raise CapacityError(f"VM {vm.vm_id} already placed")
        free_mem = self.cap_mem[host] - self.alloc_mem[host]
        required = math.ceil((self.vnode_vcpus[li, host] + v) / r)
        growth = max(0.0, required - self.vnode_cpus[li, host])
        own_mem = m / self.mem_ratios[li]
        if not self.supported[li, host]:
            raise CapacityError(
                f"host {host} does not offer level {vm.level.name}"
            )
        if (
            growth <= self.cap_cpu[host] - self.alloc_cpu[host]
            and own_mem <= free_mem + 1e-9
        ):
            self.vnode_cpus[li, host] += growth
            self.vnode_vcpus[li, host] += v
            self.alloc_cpu[host] += growth
            self.alloc_mem[host] += own_mem
            self._placements[vm.vm_id] = (host, li, v, m)
            self._requests[vm.vm_id] = vm
            if self.recorder is not None and self.recorder.enabled:
                self.recorder.record_admission(
                    AdmissionRecord(
                        vm_id=vm.vm_id,
                        host=self.machines[host].name,
                        hosted_ratio=vm.level.ratio,
                        growth=int(growth),
                        pooled=False,
                    )
                )
            return PlacementRecord(vm.vm_id, host, vm.level.ratio, pooled=False)
        if self.config.pooling and vm.level.ratio > 1:
            # Loosest stricter oversubscribed vNode with enough slack
            # (mirrors LocalScheduler._pooling_candidate).
            best = None
            for lj in range(len(self.ratios)):
                rj = self.ratios[lj]
                if not (1 < rj < vm.level.ratio):
                    continue
                slack = self.vnode_cpus[lj, host] * rj - self.vnode_vcpus[lj, host]
                if (
                    self.supported[lj, host]
                    and slack >= v
                    and m / self.mem_ratios[lj] <= free_mem + 1e-9
                    and (best is None or rj > self.ratios[best])
                ):
                    best = lj
            if best is not None:
                self.vnode_vcpus[best, host] += v
                self.alloc_mem[host] += m / self.mem_ratios[best]
                self._placements[vm.vm_id] = (host, best, v, m)
                self._requests[vm.vm_id] = vm
                if self.recorder is not None and self.recorder.enabled:
                    self.recorder.record_admission(
                        AdmissionRecord(
                            vm_id=vm.vm_id,
                            host=self.machines[host].name,
                            hosted_ratio=float(self.ratios[best]),
                            growth=0,
                            pooled=True,
                        )
                    )
                return PlacementRecord(
                    vm.vm_id, host, float(self.ratios[best]), pooled=True
                )
        raise CapacityError(f"host {host} cannot take VM {vm.vm_id}")

    def remove(self, vm_id: str) -> None:
        try:
            host, li, v, m = self._placements.pop(vm_id)
        except KeyError:
            raise CapacityError(f"VM {vm_id} is not placed") from None
        self._requests.pop(vm_id, None)
        r = self.ratios[li]
        self.vnode_vcpus[li, host] -= v
        required = (
            0.0
            if self.vnode_vcpus[li, host] == 0
            else math.ceil(self.vnode_vcpus[li, host] / r)
        )
        release = self.vnode_cpus[li, host] - required
        self.vnode_cpus[li, host] = required
        self.alloc_cpu[host] -= release
        self.alloc_mem[host] -= m / self.mem_ratios[li]
        if self.alloc_mem[host] < 1e-9:
            self.alloc_mem[host] = 0.0

    # -- scoring -------------------------------------------------------------

    def scores(self, vm: VMRequest, policy: str) -> np.ndarray:
        """Per-host scores (higher better), mirroring the object weighers."""
        n = self.num_hosts
        idx = np.arange(n, dtype=float)
        if policy == "first_fit":
            return -idx
        li = self._vm_level_index(vm)
        vm_cpu = vm.spec.vcpus / self.ratios[li]
        vm_mem = vm.spec.mem_gb / self.mem_ratios[li]
        if policy in ("best_fit", "worst_fit"):
            after_cpu = self.alloc_cpu + vm_cpu
            after_mem = self.alloc_mem + vm_mem
            free = (self.cap_cpu - after_cpu) / self.cap_cpu + (
                self.cap_mem - after_mem
            ) / self.cap_mem
            primary = -free if policy == "best_fit" else free
            return primary * 1.0 + _TIEBREAK * (-idx)
        if policy in ("progress", "progress_no_factor", "progress_bestfit"):
            target = self.cap_mem / self.cap_cpu
            busy = self.alloc_cpu > 0
            current = np.where(busy, self.alloc_mem / np.where(busy, self.alloc_cpu, 1.0), target)
            nxt = (self.alloc_mem + vm_mem) / (self.alloc_cpu + vm_cpu)
            progress = np.abs(current - target) - np.abs(nxt - target)
            if policy != "progress_no_factor":
                factor = 1.0 + self.alloc_cpu / self.cap_cpu
                progress = np.where(progress < 0, progress * factor, progress)
            if policy == "progress_bestfit":
                # The paper's suggested composition: the M/C incentive
                # alongside an existing packing rule (§VII-B2).
                after_cpu = self.alloc_cpu + vm_cpu
                after_mem = self.alloc_mem + vm_mem
                free = (self.cap_cpu - after_cpu) / self.cap_cpu + (
                    self.cap_mem - after_mem
                ) / self.cap_mem
                return progress * 1.0 + _BESTFIT_BLEND * (-free) + _TIEBREAK * (-idx)
            return progress * 1.0 + _TIEBREAK * (-idx)
        raise ConfigError(f"unknown policy {policy!r}; expected one of {POLICIES}")

    # -- introspection --------------------------------------------------------

    def host_of(self, vm_id: str) -> int:
        try:
            return self._placements[vm_id][0]
        except KeyError:
            raise CapacityError(f"VM {vm_id} is not placed") from None

    def request_of(self, vm_id: str) -> VMRequest:
        try:
            return self._requests[vm_id]
        except KeyError:
            raise CapacityError(f"VM {vm_id} is not placed") from None

    def vms_on(self, host: int) -> list[str]:
        return [vm_id for vm_id, p in self._placements.items() if p[0] == host]

    @property
    def placed_vm_ids(self) -> tuple[str, ...]:
        return tuple(self._placements)

    def host_weight(self, host: int) -> float:
        """Normalized combined allocation of one host (0 = idle)."""
        return float(
            self.alloc_cpu[host] / self.cap_cpu[host]
            + self.alloc_mem[host] / self.cap_mem[host]
        )


class VectorSimulation:
    """Run a workload through a :class:`VectorCluster` under a policy."""

    def __init__(
        self,
        machines: Sequence[MachineSpec],
        config: SlackVMConfig | None = None,
        policy: str = "progress",
        fail_fast: bool = False,
        host_levels: Sequence[Sequence[float]] | None = None,
        recorder: DecisionRecorder = NULL_RECORDER,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        if policy not in POLICIES:
            raise ConfigError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        self.machines = list(machines)
        self.config = config or SlackVMConfig()
        self.policy = policy
        self.fail_fast = fail_fast
        self.host_levels = host_levels
        self.recorder = recorder
        self.metrics = metrics

    def run(self, workload: list[VMRequest]) -> SimulationResult:
        recording = self.recorder.enabled
        measuring = self.metrics.enabled
        cluster = VectorCluster(
            self.machines,
            self.config,
            self.host_levels,
            recorder=self.recorder if recording else None,
        )
        queue = workload_events(workload)
        placements: dict[str, PlacementRecord] = {}
        rejections: list[str] = []
        timeline = Timeline()
        pooled = 0
        alive: set[str] = set()
        arrival_seq = 0
        for event in queue.drain():
            vm = event.vm
            if event.kind is EventKind.ARRIVAL:
                t0 = perf_counter() if measuring else 0.0
                feasible, growth, _own = cluster.feasibility(vm)
                any_feasible = bool(feasible.any())
                scores = None
                if any_feasible or recording:
                    scores = cluster.scores(vm, self.policy)
                    scores = np.where(feasible, scores, -np.inf)
                if measuring:
                    self.metrics.timer("select_s").observe(perf_counter() - t0)
                    self.metrics.counter("arrivals").inc()
                if not any_feasible:
                    rejections.append(vm.vm_id)
                    if measuring:
                        self.metrics.counter("rejections").inc()
                    if recording:
                        self._record(
                            event, arrival_seq, cluster, feasible, scores,
                            vm, None, None, None,
                        )
                    arrival_seq += 1
                    if self.fail_fast:
                        break
                else:
                    host = int(np.argmax(scores))  # first max == lowest index
                    record = cluster.deploy(vm, host)
                    pooled += record.pooled
                    placements[vm.vm_id] = record
                    alive.add(vm.vm_id)
                    if measuring:
                        self.metrics.counter("placements").inc()
                        if record.pooled:
                            self.metrics.counter("pooled").inc()
                    if recording:
                        own_growth = 0 if record.pooled else int(growth[host])
                        self._record(
                            event, arrival_seq, cluster, feasible, scores,
                            vm, host, record, own_growth,
                        )
                    arrival_seq += 1
            else:
                if vm.vm_id in alive:
                    cluster.remove(vm.vm_id)
                    alive.discard(vm.vm_id)
                    if measuring:
                        self.metrics.counter("departures").inc()
            timeline.record(
                event.time,
                float(cluster.alloc_cpu.sum()),
                float(cluster.alloc_mem.sum()),
            )
        if measuring:
            self.metrics.gauge("final_alloc_cpu").set(float(cluster.alloc_cpu.sum()))
            self.metrics.gauge("final_alloc_mem").set(float(cluster.alloc_mem.sum()))
        return SimulationResult(
            num_hosts=cluster.num_hosts,
            capacity_cpu=float(cluster.cap_cpu.sum()),
            capacity_mem=float(cluster.cap_mem.sum()),
            placements=placements,
            rejections=rejections,
            timeline=timeline,
            pooled_placements=pooled,
        )

    def _record(
        self, event, seq, cluster, feasible, scores, vm, host, placement, growth
    ) -> None:
        """Emit one DecisionRecord for an arrival (instrumented path only).

        Filter names mirror the object path's
        ``LevelSupportFilter``/``CapacityFilter`` verdicts so the two
        decision streams diff field-by-field in the audit tool.
        """
        li = cluster.level_index(vm.level.ratio)
        decisions = []
        for j in range(cluster.num_hosts):
            supported = bool(cluster.supported[li, j])
            eligible = bool(feasible[j])
            verdicts = {
                "LevelSupportFilter": supported,
                "CapacityFilter": eligible,
            }
            if eligible:
                score = float(scores[j])
                decisions.append(
                    HostDecision(j, True, verdicts, {"policy": score}, score)
                )
            else:
                decisions.append(HostDecision(j, False, verdicts))
        if placement is None:
            admission, hosted_ratio = ADMISSION_REJECTED, None
        elif placement.pooled:
            admission, hosted_ratio = ADMISSION_POOLED, placement.hosted_ratio
        else:
            admission, hosted_ratio = ADMISSION_GROWTH, placement.hosted_ratio
        if self.metrics.enabled:
            self.metrics.histogram("candidates").observe(int(feasible.sum()))
        self.recorder.record_decision(
            DecisionRecord(
                seq=seq,
                time=event.time,
                vm_id=vm.vm_id,
                scheduler=f"vector:{self.policy}",
                hosts=tuple(decisions),
                chosen=host,
                admission=admission,
                hosted_ratio=hosted_ratio,
                growth=growth,
            )
        )
