"""Canonical serialization of simulation results, for conformance tests.

The golden decision-record corpus (``tests/fixtures/golden/*.jsonl``)
locks the *instrumented* path byte-for-byte — but recording disables
the engine's uninstrumented fast loop, so those fixtures never execute
the shape-cache or pruned-kernel selection code at all.  The
scale-tier fixtures (``tests/fixtures/golden/scale/``) close that gap:
they freeze the **result stream** of an uninstrumented run — every
placement decision in arrival order, the rejection list, and a digest
of the full allocation timeline — in a canonical text form that any
kernel must reproduce byte-for-byte.

:func:`result_stream` is deliberately exact, not approximate:
placements carry the float ``hosted_ratio`` through ``repr``-faithful
JSON, and the timeline (three float64 arrays, one sample per event) is
folded into a SHA-256 over its raw little-endian bytes, so a single
ULP of drift anywhere in the run changes the stream.  At 5000 hosts a
full decision-record trace would be tens of megabytes; the result
stream is a few kilobytes and pins the same arithmetic.
"""

from __future__ import annotations

import hashlib
import json

from repro.simulator.engine import SimulationResult

__all__ = ["result_stream"]


def _line(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def result_stream(result: SimulationResult) -> str:
    """Canonical text form of a :class:`SimulationResult`.

    One compact JSON line per placement, in placement order (dict
    insertion order — the arrival order of admitted VMs), followed by
    one summary line carrying the rejections, the aggregate counters
    and the timeline digest.  Equal streams ⇔ bit-identical decisions,
    pooling verdicts and per-event allocation trajectories.
    """
    lines = [
        _line(
            {
                "vm": vm_id,
                "host": rec.host,
                "ratio": rec.hosted_ratio,
                "pooled": rec.pooled,
            }
        )
        for vm_id, rec in result.placements.items()
    ]
    times, cpu, mem = result.timeline.as_arrays()
    digest = hashlib.sha256(
        times.tobytes() + cpu.tobytes() + mem.tobytes()
    ).hexdigest()
    lines.append(
        _line(
            {
                "summary": {
                    "num_hosts": result.num_hosts,
                    "placed": len(result.placements),
                    "rejections": list(result.rejections),
                    "pooled_placements": result.pooled_placements,
                    "timeline_samples": int(times.shape[0]),
                    "timeline_sha256": digest,
                }
            }
        )
    )
    return "\n".join(lines) + "\n"
