"""Cluster-level metrics derived from simulation results.

Provides the two quantities the paper's evaluation reports (§VII-B2):

* unallocated CPU / memory shares (Figure 3) — measured at the peak
  combined allocation of each (minimally-sized) cluster, and also as a
  time-weighted average for completeness;
* PM savings between a dedicated-clusters baseline and SlackVM's shared
  cluster (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.simulator.engine import SimulationResult

__all__ = [
    "UnallocatedShares",
    "unallocated_at_peak",
    "time_averaged_unallocated",
    "combine_unallocated",
    "pm_savings_percent",
]


@dataclass(frozen=True, slots=True)
class UnallocatedShares:
    """Fraction of cluster CPU / memory left unallocated."""

    cpu: float
    mem: float

    def __iter__(self):
        yield self.cpu
        yield self.mem


def unallocated_at_peak(result: SimulationResult) -> UnallocatedShares:
    """Unallocated shares at the instant of peak combined allocation."""
    cpu, mem = result.unallocated_at_peak()
    return UnallocatedShares(cpu=float(cpu), mem=float(mem))


def time_averaged_unallocated(result: SimulationResult) -> UnallocatedShares:
    """Time-weighted mean unallocated shares over the whole trace."""
    times, cpu, mem = result.timeline.as_arrays()
    if len(times) < 2:
        return UnallocatedShares(1.0, 1.0)
    dt = np.diff(times)
    span = dt.sum()
    if span == 0:
        return unallocated_at_peak(result)
    # Allocation recorded at event i holds until event i+1.
    cpu_share = 1.0 - float((cpu[:-1] * dt).sum() / span) / result.capacity_cpu
    mem_share = 1.0 - float((mem[:-1] * dt).sum() / span) / result.capacity_mem
    return UnallocatedShares(cpu=cpu_share, mem=mem_share)


def combine_unallocated(
    results: Sequence[SimulationResult], at_peak: bool = True
) -> UnallocatedShares:
    """Capacity-weighted combination across several (dedicated) clusters.

    Each dedicated cluster is sized by its own peak, so its unallocated
    share is taken at its own peak instant, then combined weighted by
    cluster capacity — matching how Figure 3 aggregates the baseline.
    """
    if not results:
        raise ValueError("need at least one result")
    cap_cpu = sum(r.capacity_cpu for r in results)
    cap_mem = sum(r.capacity_mem for r in results)
    free_cpu = 0.0
    free_mem = 0.0
    for r in results:
        shares = unallocated_at_peak(r) if at_peak else time_averaged_unallocated(r)
        free_cpu += shares.cpu * r.capacity_cpu
        free_mem += shares.mem * r.capacity_mem
    return UnallocatedShares(cpu=free_cpu / cap_cpu, mem=free_mem / cap_mem)


def pm_savings_percent(baseline_pms: int, slackvm_pms: int) -> float:
    """PMs saved by the shared cluster, in percent of the baseline."""
    if baseline_pms <= 0:
        raise ValueError("baseline must use at least one PM")
    return 100.0 * (baseline_pms - slackvm_pms) / baseline_pms
