"""Minimal-cluster sizing (paper §VII-B1).

"For each workload, a simulation was initiated, starting from an empty
cluster and progressively increased until the minimal number of PMs was
determined."  This module implements that search:

1. a *lower bound* from the peak concurrent fractional demand (no
   packing can beat it);
2. an exponential probe upward until a feasible size is found;
3. a binary refinement, followed by a downward verification walk
   (placement heuristics are not guaranteed monotonic in cluster size,
   so the boundary is re-checked instead of trusted).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence, Union

from repro.core.config import SlackVMConfig
from repro.core.errors import SimulationError
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.simulator.engine import SimulationResult
from repro.simulator.vectorpool import VectorSimulation

__all__ = ["SizingResult", "demand_lower_bound", "minimal_cluster"]

#: Sizing searches explore at most this many cluster sizes above the
#: lower bound before giving up (guards against impossible workloads,
#: e.g. a VM larger than the machine).
MAX_PROBE_FACTOR = 64


@dataclass(frozen=True)
class SizingResult:
    """Outcome of a minimal-cluster search."""

    pms: int
    result: SimulationResult
    lower_bound: int
    probes: tuple[tuple[int, bool], ...] = field(default=())


def demand_lower_bound(
    workload: Sequence[VMRequest],
    machine: Union[MachineSpec, Sequence[MachineSpec]],
) -> int:
    """Cluster size no packing can beat: peak fractional demand / capacity.

    CPU demand counts ``vcpus / ratio`` physical cores per VM (the best
    possible oversubscribed packing, ignoring ceil effects); memory at
    its physical reservation.  For a heterogeneous machine pattern the
    largest capacity in each dimension is used, which keeps the result
    a valid lower bound.
    """
    if not isinstance(machine, MachineSpec):
        pattern = list(machine)
        cpus = max(m.cpus for m in pattern)
        mem = max(m.mem_gb for m in pattern)
        machine = MachineSpec(name="envelope", cpus=cpus, mem_gb=mem)
    deltas: list[tuple[float, int, float, float]] = []
    for vm in workload:
        alloc = vm.allocation()
        deltas.append((vm.arrival, 1, alloc.cpu, alloc.mem))
        if vm.departure is not None:
            deltas.append((vm.departure, 0, -alloc.cpu, -alloc.mem))
    # Departures (key 0) release before arrivals (key 1) at equal times.
    deltas.sort(key=lambda d: (d[0], d[1]))
    cpu = mem = 0.0
    peak_cpu = peak_mem = 0.0
    for _, _, dc, dm in deltas:
        cpu += dc
        mem += dm
        peak_cpu = max(peak_cpu, cpu)
        peak_mem = max(peak_mem, mem)
    return max(
        1,
        math.ceil(peak_cpu / machine.cpus - 1e-9),
        math.ceil(peak_mem / machine.mem_gb - 1e-9),
    )


def minimal_cluster(
    workload: Sequence[VMRequest],
    machine: Union[MachineSpec, Sequence[MachineSpec]],
    policy: str = "progress",
    config: SlackVMConfig | None = None,
    simulation_factory: Callable[[list[MachineSpec]], VectorSimulation] | None = None,
    lower_bound: int | None = None,
) -> SizingResult:
    """Smallest cluster of ``machine`` hosting ``workload``.

    ``machine`` may be a single spec (homogeneous cluster) or a pattern
    of specs cycled as the cluster grows (heterogeneous hardware — the
    progress score computes its target ratio per PM, §VI).

    ``simulation_factory`` may replace the default
    :class:`VectorSimulation` construction (used by ablations that need
    custom engines); it receives the machine list and must return an
    object with ``run(workload) -> SimulationResult``.

    ``lower_bound`` overrides the demand-derived search floor — needed
    when a custom engine packs tighter than the static accounting the
    default bound assumes (e.g. dynamic oversubscription levels).
    """
    workload = list(workload)
    if not workload:
        raise SimulationError("cannot size a cluster for an empty workload")
    cfg = config or SlackVMConfig()
    pattern = [machine] if isinstance(machine, MachineSpec) else list(machine)
    if not pattern:
        raise SimulationError("machine pattern cannot be empty")

    def simulate(n: int) -> SimulationResult:
        machines = [
            MachineSpec(
                name=f"{pattern[i % len(pattern)].name}-{i}",
                cpus=pattern[i % len(pattern)].cpus,
                mem_gb=pattern[i % len(pattern)].mem_gb,
            )
            for i in range(n)
        ]
        if simulation_factory is not None:
            sim = simulation_factory(machines)
        else:
            sim = VectorSimulation(machines, config=cfg, policy=policy, fail_fast=True)
        return sim.run(workload)

    lb = demand_lower_bound(workload, machine) if lower_bound is None else lower_bound
    if lb < 1:
        raise SimulationError(f"lower_bound must be >= 1, got {lb}")
    probes: list[tuple[int, bool]] = []
    cache: dict[int, SimulationResult] = {}

    def feasible(n: int) -> bool:
        if n not in cache:
            cache[n] = simulate(n)
            probes.append((n, cache[n].feasible))
        return cache[n].feasible

    # Exponential probe up from the lower bound.
    step = 1
    n = lb
    last_bad = lb - 1
    while not feasible(n):
        last_bad = n
        step *= 2
        n = lb + step - 1
        if step > MAX_PROBE_FACTOR * max(lb, 1):
            raise SimulationError(
                f"no feasible cluster within {n} PMs — is a VM larger than the machine?"
            )
    # Binary refinement in (last_bad, n].
    lo, hi = last_bad, n
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    # Heuristics are not strictly monotonic: walk down past the boundary.
    while hi - 1 >= lb and feasible(hi - 1):
        hi -= 1
    return SizingResult(
        pms=hi, result=cache[hi], lower_bound=lb, probes=tuple(probes)
    )
