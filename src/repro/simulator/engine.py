"""Reference simulation engine (object path).

Runs a workload trace against a list of per-PM
:class:`~repro.localsched.agent.LocalScheduler` hosts under a
:class:`~repro.scheduling.global_scheduler.ScoreBasedScheduler`.  This
is the faithful-but-slow path; the vectorized engine in
:mod:`repro.simulator.vectorpool` implements identical semantics for
the at-scale benches, and the test suite asserts their equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.config import SlackVMConfig
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.localsched.agent import LocalScheduler
from repro.scheduling.global_scheduler import ScoreBasedScheduler
from repro.simulator.events import EventKind, workload_events

__all__ = ["PlacementRecord", "Timeline", "SimulationResult", "Simulation", "build_hosts"]


@dataclass(frozen=True, slots=True)
class PlacementRecord:
    vm_id: str
    host: int
    hosted_ratio: float
    pooled: bool


@dataclass
class Timeline:
    """Per-event snapshots of cluster-wide allocation."""

    times: list[float] = field(default_factory=list)
    alloc_cpu: list[float] = field(default_factory=list)
    alloc_mem: list[float] = field(default_factory=list)

    def record(self, time: float, cpu: float, mem: float) -> None:
        self.times.append(time)
        self.alloc_cpu.append(cpu)
        self.alloc_mem.append(mem)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.asarray(self.times),
            np.asarray(self.alloc_cpu),
            np.asarray(self.alloc_mem),
        )


@dataclass
class SimulationResult:
    num_hosts: int
    capacity_cpu: float
    capacity_mem: float
    placements: dict[str, PlacementRecord]
    rejections: list[str]
    timeline: Timeline
    pooled_placements: int = 0

    @property
    def feasible(self) -> bool:
        """No deployment was rejected."""
        return not self.rejections

    def peak_index(self) -> int:
        """Timeline index of the heaviest combined allocation."""
        _, cpu, mem = self.timeline.as_arrays()
        weight = cpu / self.capacity_cpu + mem / self.capacity_mem
        return int(np.argmax(weight))

    def unallocated_at_peak(self) -> tuple[float, float]:
        """(cpu share, mem share) left unallocated at the peak instant."""
        i = self.peak_index()
        _, cpu, mem = self.timeline.as_arrays()
        return (
            1.0 - cpu[i] / self.capacity_cpu,
            1.0 - mem[i] / self.capacity_mem,
        )

    def peak_allocation(self) -> tuple[float, float]:
        i = self.peak_index()
        _, cpu, mem = self.timeline.as_arrays()
        return float(cpu[i]), float(mem[i])


def build_hosts(
    machine: MachineSpec, count: int, config: SlackVMConfig | None = None
) -> list[LocalScheduler]:
    """A homogeneous cluster of ``count`` accounting-mode hosts."""
    cfg = config or SlackVMConfig()
    return [
        LocalScheduler(
            MachineSpec(name=f"{machine.name}-{i}", cpus=machine.cpus, mem_gb=machine.mem_gb),
            cfg,
        )
        for i in range(count)
    ]


class Simulation:
    """Drive a workload trace through a cluster + global scheduler."""

    def __init__(
        self,
        hosts: Sequence[LocalScheduler],
        scheduler: ScoreBasedScheduler,
        fail_fast: bool = False,
    ):
        self.hosts = list(hosts)
        self.scheduler = scheduler
        self.fail_fast = fail_fast

    def run(self, workload: list[VMRequest]) -> SimulationResult:
        queue = workload_events(workload)
        placements: dict[str, PlacementRecord] = {}
        rejections: list[str] = []
        timeline = Timeline()
        pooled = 0
        cap_cpu = float(sum(h.machine.cpus for h in self.hosts))
        cap_mem = float(sum(h.machine.mem_gb for h in self.hosts))
        alive: set[str] = set()
        for event in queue.drain():
            vm = event.vm
            if event.kind is EventKind.ARRIVAL:
                idx: Optional[int] = self.scheduler.select(self.hosts, vm)
                if idx is None:
                    rejections.append(vm.vm_id)
                    if self.fail_fast:
                        break
                else:
                    placement = self.hosts[idx].deploy(vm)
                    pooled += placement.pooled
                    placements[vm.vm_id] = PlacementRecord(
                        vm.vm_id, idx, placement.hosted_level.ratio, placement.pooled
                    )
                    alive.add(vm.vm_id)
            else:
                if vm.vm_id in alive:
                    self.hosts[placements[vm.vm_id].host].remove(vm.vm_id)
                    alive.discard(vm.vm_id)
            timeline.record(
                event.time,
                float(sum(h.allocated_cpus for h in self.hosts)),
                float(sum(h.allocated_mem for h in self.hosts)),
            )
        return SimulationResult(
            num_hosts=len(self.hosts),
            capacity_cpu=cap_cpu,
            capacity_mem=cap_mem,
            placements=placements,
            rejections=rejections,
            timeline=timeline,
            pooled_placements=pooled,
        )
