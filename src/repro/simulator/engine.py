"""Reference simulation engine (object path).

Runs a workload trace against a list of per-PM
:class:`~repro.localsched.agent.LocalScheduler` hosts under a
:class:`~repro.scheduling.global_scheduler.ScoreBasedScheduler`.  This
is the faithful-but-slow path; the vectorized engine in
:mod:`repro.simulator.vectorpool` implements identical semantics for
the at-scale benches, and the test suite asserts their equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.core.config import SlackVMConfig
from repro.core.errors import SimulationError
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.localsched.agent import LocalScheduler
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs import names as metric_names
from repro.obs.records import (
    ADMISSION_GROWTH,
    ADMISSION_POOLED,
    ADMISSION_REJECTED,
    DecisionRecord,
    DecisionRecorder,
    HostDecision,
    NULL_RECORDER,
)
from repro.scheduling.global_scheduler import ScoreBasedScheduler
from repro.simulator.events import EventKind, workload_events

if TYPE_CHECKING:  # annotation-only: keeps simulator below oversub (R009)
    from repro.oversub.controller import (
        OversubController,
        OversubParams,
        OversubSummary,
    )
    from repro.oversub.pipeline import ObjectClusterTarget

__all__ = ["PlacementRecord", "Timeline", "SimulationResult", "Simulation", "build_hosts"]


@dataclass(frozen=True, slots=True)
class PlacementRecord:
    vm_id: str
    host: int
    hosted_ratio: float
    pooled: bool


@dataclass
class Timeline:
    """Per-event snapshots of cluster-wide allocation."""

    times: list[float] = field(default_factory=list)
    alloc_cpu: list[float] = field(default_factory=list)
    alloc_mem: list[float] = field(default_factory=list)

    def record(self, time: float, cpu: float, mem: float) -> None:
        self.times.append(time)
        self.alloc_cpu.append(cpu)
        self.alloc_mem.append(mem)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.asarray(self.times),
            np.asarray(self.alloc_cpu),
            np.asarray(self.alloc_mem),
        )


@dataclass
class SimulationResult:
    num_hosts: int
    capacity_cpu: float
    capacity_mem: float
    placements: dict[str, PlacementRecord]
    rejections: list[str]
    timeline: Timeline
    pooled_placements: int = 0
    #: Dynamic-oversubscription ledger; None when no estimator ran.
    oversub: Optional[OversubSummary] = None

    @property
    def feasible(self) -> bool:
        """No deployment was rejected."""
        return not self.rejections

    def peak_index(self) -> int:
        """Timeline index of the heaviest combined allocation.

        Raises :class:`~repro.core.errors.SimulationError` when the
        timeline is empty (empty workload, or a ``fail_fast`` run whose
        very first arrival was rejected) — there is no peak instant to
        index.  The share accessors below stay total: an empty timeline
        simply means nothing was ever allocated.
        """
        if not self.timeline.times:
            raise SimulationError(
                "timeline is empty (no events were simulated); "
                "peak_index() is undefined"
            )
        _, cpu, mem = self.timeline.as_arrays()
        weight = cpu / self.capacity_cpu + mem / self.capacity_mem
        return int(np.argmax(weight))

    def unallocated_at_peak(self) -> tuple[float, float]:
        """(cpu share, mem share) left unallocated at the peak instant.

        An empty timeline has everything unallocated: ``(1.0, 1.0)``.
        """
        if not self.timeline.times:
            return (1.0, 1.0)
        i = self.peak_index()
        _, cpu, mem = self.timeline.as_arrays()
        return (
            1.0 - cpu[i] / self.capacity_cpu,
            1.0 - mem[i] / self.capacity_mem,
        )

    def peak_allocation(self) -> tuple[float, float]:
        """(cpu, mem) allocated at the peak instant; zero on an empty timeline."""
        if not self.timeline.times:
            return (0.0, 0.0)
        i = self.peak_index()
        _, cpu, mem = self.timeline.as_arrays()
        return float(cpu[i]), float(mem[i])


def build_hosts(
    machine: MachineSpec, count: int, config: SlackVMConfig | None = None
) -> list[LocalScheduler]:
    """A homogeneous cluster of ``count`` accounting-mode hosts."""
    cfg = config or SlackVMConfig()
    return [
        LocalScheduler(
            MachineSpec(
                name=f"{machine.name}-{i}",
                cpus=machine.cpus,
                mem_gb=machine.mem_gb,
                topology_factory=machine.topology_factory,
            ),
            cfg,
        )
        for i in range(count)
    ]


class Simulation:
    """Drive a workload trace through a cluster + global scheduler.

    ``recorder``/``metrics`` plug the :mod:`repro.obs` layer in: when an
    enabled recorder is supplied, every arrival emits one
    :class:`~repro.obs.records.DecisionRecord` (full filter/score
    table via :meth:`ScoreBasedScheduler.decide`) and every deploy one
    admission record; the defaults are no-ops costing one flag check
    per event, keeping the uninstrumented path unchanged.
    """

    def __init__(
        self,
        hosts: Sequence[LocalScheduler],
        scheduler: ScoreBasedScheduler,
        fail_fast: bool = False,
        recorder: DecisionRecorder = NULL_RECORDER,
        metrics: MetricsRegistry = NULL_METRICS,
        oversub: OversubParams | None = None,
    ):
        self.hosts = list(hosts)
        self.scheduler = scheduler
        self.fail_fast = fail_fast
        self.recorder = recorder
        self.metrics = metrics
        self.oversub = oversub
        self._oversub_target: Optional[ObjectClusterTarget] = None
        self._oversub_controller: Optional[OversubController] = None
        if oversub is not None:
            # Deferred import: the engine only reaches up into the
            # oversub layer when a controller is requested (R009).
            from repro.oversub.pipeline import (
                EffectiveCapacityView,
                ObjectClusterTarget,
                with_oversub,
            )

            # The object path composes through the Nova-style pipeline:
            # an EffectiveCapacityFilter (and optional SlackAwareWeigher)
            # reading a shared view the controller updates.  Local
            # agents allocate physical slots, so on this path a dynamic
            # capacity can only restrict placement; the vector engine's
            # capacity override is the path that admits beyond physical.
            view = EffectiveCapacityView(
                [h.machine.name for h in self.hosts],
                [float(h.machine.cpus) for h in self.hosts],
            )
            self.oversub_view = view
            self.scheduler = with_oversub(
                scheduler, view, slack_weight=oversub.slack_weight
            )
            self._oversub_target = ObjectClusterTarget(self.hosts, view)
            self._oversub_controller = oversub.build_controller(metrics)
        if recorder.enabled:
            # Local agents emit their own admission records; wire any
            # un-instrumented host to the simulation's sink.
            for host in self.hosts:
                if host.recorder is None:
                    host.recorder = recorder

    def run(self, workload: list[VMRequest]) -> SimulationResult:
        queue = workload_events(workload)
        placements: dict[str, PlacementRecord] = {}
        rejections: list[str] = []
        timeline = Timeline()
        pooled = 0
        cap_cpu = float(sum(h.machine.cpus for h in self.hosts))
        cap_mem = float(sum(h.machine.mem_gb for h in self.hosts))
        alive: set[str] = set()
        recording = self.recorder.enabled
        measuring = self.metrics.enabled
        arrival_seq = 0
        controller = self._oversub_controller
        target = self._oversub_target
        for event in queue.drain():
            if controller is not None and target is not None:
                controller.advance(target, event.time)
            vm = event.vm
            if event.kind is EventKind.ARRIVAL:
                decisions: tuple[HostDecision, ...] = ()
                t0 = perf_counter() if measuring else 0.0
                if recording:
                    idx, decisions = self.scheduler.decide(self.hosts, vm)
                else:
                    idx = self.scheduler.select(self.hosts, vm)
                if measuring:
                    self.metrics.timer(metric_names.SELECT_S).observe(perf_counter() - t0)
                    self.metrics.counter(metric_names.ARRIVALS).inc()
                if idx is None:
                    rejections.append(vm.vm_id)
                    if measuring:
                        self.metrics.counter(metric_names.REJECTIONS).inc()
                    if recording:
                        self._record(event, arrival_seq, decisions, None, None)
                    arrival_seq += 1
                    if self.fail_fast:
                        break
                else:
                    placement = self.hosts[idx].deploy(vm)
                    pooled += placement.pooled
                    placements[vm.vm_id] = PlacementRecord(
                        vm.vm_id, idx, placement.hosted_level.ratio, placement.pooled
                    )
                    alive.add(vm.vm_id)
                    if target is not None:
                        target.live[vm.vm_id] = (vm, idx)
                    if measuring:
                        self.metrics.counter(metric_names.PLACEMENTS).inc()
                        if placement.pooled:
                            self.metrics.counter(metric_names.POOLED).inc()
                    if recording:
                        self._record(event, arrival_seq, decisions, idx, placement)
                    arrival_seq += 1
            else:
                if vm.vm_id in alive:
                    self.hosts[placements[vm.vm_id].host].remove(vm.vm_id)
                    alive.discard(vm.vm_id)
                    if target is not None:
                        target.live.pop(vm.vm_id, None)
                    if measuring:
                        self.metrics.counter(metric_names.DEPARTURES).inc()
            timeline.record(
                event.time,
                float(sum(h.allocated_cpus for h in self.hosts)),
                float(sum(h.allocated_mem for h in self.hosts)),
            )
        if measuring:
            self.metrics.gauge(metric_names.FINAL_ALLOC_CPU).set(
                float(sum(h.allocated_cpus for h in self.hosts))
            )
            self.metrics.gauge(metric_names.FINAL_ALLOC_MEM).set(
                float(sum(h.allocated_mem for h in self.hosts))
            )
        return SimulationResult(
            num_hosts=len(self.hosts),
            capacity_cpu=cap_cpu,
            capacity_mem=cap_mem,
            placements=placements,
            rejections=rejections,
            timeline=timeline,
            pooled_placements=pooled,
            oversub=controller.summary() if controller is not None else None,
        )

    def _record(self, event, seq, decisions, chosen, placement) -> None:
        """Emit one DecisionRecord for an arrival (instrumented path only)."""
        if placement is None:
            admission = ADMISSION_REJECTED
            hosted_ratio = None
            growth = None
        else:
            admission = ADMISSION_POOLED if placement.pooled else ADMISSION_GROWTH
            hosted_ratio = placement.hosted_level.ratio
            growth = len(placement.new_cpus)
        if self.metrics.enabled:
            self.metrics.histogram(metric_names.CANDIDATES).observe(
                sum(d.eligible for d in decisions)
            )
        self.recorder.record_decision(
            DecisionRecord(
                seq=seq,
                time=event.time,
                vm_id=event.vm.vm_id,
                scheduler=self.scheduler.name,
                hosts=decisions,
                chosen=chosen,
                admission=admission,
                hosted_ratio=hosted_ratio,
                growth=growth,
            )
        )
