"""Naive reference kernel for the vector engine (the pre-change hot path).

These are the original implementations of the
:class:`VectorCluster` hot-path methods — ``feasibility``/``scores``
(allocation-heavy: every call allocates fresh numpy temporaries and
recomputes every derived quantity cluster-wide) and
``deploy``/``remove`` (numpy-scalar accounting with no cache
bookkeeping).  They are retained verbatim as the *oracle* for the
incremental kernel in :mod:`repro.simulator.vectorpool`:

* the kernel-equivalence property suite
  (``tests/simulator/test_kernel_equivalence.py``) asserts the
  incremental kernel's outputs equal these element-wise on random
  cluster states, and
* ``repro bench engine`` runs both kernels side by side, so the
  committed ``BENCH_engine.json`` speedups are measured against this
  exact code.

Both functions read only the cluster's raw state arrays (``cap_*``,
``alloc_*``, ``vnode_*``, ``supported``) — never the incremental
caches — so they stay valid even if the caches are stale.

Do not "optimize" this module: its value is that it does not change.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import CapacityError, ConfigError
from repro.core.types import VMRequest
from repro.obs.records import AdmissionRecord
from repro.scheduling.constants import (
    BESTFIT_BLEND,
    CAPACITY_EPSILON,
    TIEBREAK_WEIGHT,
)

__all__ = ["naive_feasibility", "naive_scores", "naive_deploy", "naive_remove"]


def naive_feasibility(
    cluster, vm: VMRequest
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cluster-wide admission data for ``vm`` (original implementation).

    Returns freshly-allocated ``(feasible, growth, own_ok)`` arrays with
    the same semantics as :meth:`VectorCluster.feasibility`.
    """
    li = cluster._vm_level_index(vm)
    r = cluster.ratios[li]
    v = vm.spec.vcpus
    m = vm.spec.mem_gb
    free_mem = cluster.cap_mem - cluster.alloc_mem
    own_mem_ok = m / cluster.mem_ratios[li] <= free_mem + CAPACITY_EPSILON
    required = np.ceil((cluster.vnode_vcpus[li] + v) / r)
    growth = np.maximum(0.0, required - cluster.vnode_cpus[li])
    own_ok = (
        cluster.supported[li]
        & own_mem_ok
        & (growth <= cluster.cap_cpu - cluster.alloc_cpu)
    )
    feasible = own_ok.copy()
    if cluster.config.pooling and vm.level.ratio > 1:
        stricter = (cluster.ratios > 1) & (cluster.ratios < vm.level.ratio)
        if stricter.any():
            slack = (
                cluster.vnode_cpus[stricter] * cluster.ratios[stricter, None]
                - cluster.vnode_vcpus[stricter]
            )
            mem_ok = (
                m / cluster.mem_ratios[stricter, None]
                <= free_mem[None, :] + CAPACITY_EPSILON
            )
            # Pooling also requires the VM's own level to be part of
            # the host's offer (mirrors LocalScheduler.supports).
            pool_ok = (
                cluster.supported[li]
                & ((slack >= v) & mem_ok & cluster.supported[stricter]).any(axis=0)
            )
            feasible |= pool_ok
    return feasible, growth, own_ok


def naive_scores(cluster, vm: VMRequest, policy: str) -> np.ndarray:
    """Cluster-wide per-host scores (original implementation).

    Returns a freshly-allocated score array with the same semantics as
    :meth:`VectorCluster.scores` (higher is better).
    """
    n = cluster.num_hosts
    idx = np.arange(n, dtype=float)
    if policy == "first_fit":
        return -idx
    li = cluster._vm_level_index(vm)
    vm_cpu = vm.spec.vcpus / cluster.ratios[li]
    vm_mem = vm.spec.mem_gb / cluster.mem_ratios[li]
    if policy in ("best_fit", "worst_fit"):
        after_cpu = cluster.alloc_cpu + vm_cpu
        after_mem = cluster.alloc_mem + vm_mem
        free = (cluster.cap_cpu - after_cpu) / cluster.cap_cpu + (
            cluster.cap_mem - after_mem
        ) / cluster.cap_mem
        primary = -free if policy == "best_fit" else free
        return primary * 1.0 + TIEBREAK_WEIGHT * (-idx)
    if policy in ("progress", "progress_no_factor", "progress_bestfit"):
        target = cluster.cap_mem / cluster.cap_cpu
        busy = cluster.alloc_cpu > 0
        current = np.where(
            busy, cluster.alloc_mem / np.where(busy, cluster.alloc_cpu, 1.0), target
        )
        nxt = (cluster.alloc_mem + vm_mem) / (cluster.alloc_cpu + vm_cpu)
        progress = np.abs(current - target) - np.abs(nxt - target)
        if policy != "progress_no_factor":
            factor = 1.0 + cluster.alloc_cpu / cluster.cap_cpu
            progress = np.where(progress < 0, progress * factor, progress)
        if policy == "progress_bestfit":
            # The paper's suggested composition: the M/C incentive
            # alongside an existing packing rule (§VII-B2).
            after_cpu = cluster.alloc_cpu + vm_cpu
            after_mem = cluster.alloc_mem + vm_mem
            free = (cluster.cap_cpu - after_cpu) / cluster.cap_cpu + (
                cluster.cap_mem - after_mem
            ) / cluster.cap_mem
            return (
                progress * 1.0
                + BESTFIT_BLEND * (-free)
                + TIEBREAK_WEIGHT * (-idx)
            )
        return progress * 1.0 + TIEBREAK_WEIGHT * (-idx)
    from repro.simulator.vectorpool import POLICIES

    raise ConfigError(f"unknown policy {policy!r}; expected one of {POLICIES}")


def naive_deploy(cluster, vm: VMRequest, host: int):
    """Place ``vm`` on ``host`` (original implementation).

    Numpy-scalar reads and no cache bookkeeping — exactly the
    pre-change accounting, so ``kernel="naive"`` benchmarks measure
    the real baseline end to end.
    """
    from repro.simulator.engine import PlacementRecord

    li = cluster._vm_level_index(vm)
    r = cluster.ratios[li]
    v = vm.spec.vcpus
    m = vm.spec.mem_gb
    if vm.vm_id in cluster._placements:
        raise CapacityError(f"VM {vm.vm_id} already placed")
    free_mem = cluster.cap_mem[host] - cluster.alloc_mem[host]
    required = math.ceil((cluster.vnode_vcpus[li, host] + v) / r)
    growth = max(0.0, required - cluster.vnode_cpus[li, host])
    own_mem = m / cluster.mem_ratios[li]
    if not cluster.supported[li, host]:
        raise CapacityError(f"host {host} does not offer level {vm.level.name}")
    if (
        growth <= cluster.cap_cpu[host] - cluster.alloc_cpu[host]
        and own_mem <= free_mem + CAPACITY_EPSILON
    ):
        cluster.vnode_cpus[li, host] += growth
        cluster.vnode_vcpus[li, host] += v
        cluster.alloc_cpu[host] += growth
        cluster.alloc_mem[host] += own_mem
        cluster._placements[vm.vm_id] = (host, li, v, m)
        cluster._requests[vm.vm_id] = vm
        if cluster.recorder is not None and cluster.recorder.enabled:
            cluster.recorder.record_admission(
                AdmissionRecord(
                    vm_id=vm.vm_id,
                    host=cluster.machines[host].name,
                    hosted_ratio=vm.level.ratio,
                    growth=int(growth),
                    pooled=False,
                )
            )
        return PlacementRecord(vm.vm_id, host, vm.level.ratio, pooled=False)
    if cluster.config.pooling and vm.level.ratio > 1:
        # Loosest stricter oversubscribed vNode with enough slack
        # (mirrors LocalScheduler._pooling_candidate).
        best = None
        for lj in range(len(cluster.ratios)):
            rj = cluster.ratios[lj]
            if not (1 < rj < vm.level.ratio):
                continue
            slack = cluster.vnode_cpus[lj, host] * rj - cluster.vnode_vcpus[lj, host]
            if (
                cluster.supported[lj, host]
                and slack >= v
                and m / cluster.mem_ratios[lj] <= free_mem + CAPACITY_EPSILON
                and (best is None or rj > cluster.ratios[best])
            ):
                best = lj
        if best is not None:
            cluster.vnode_vcpus[best, host] += v
            cluster.alloc_mem[host] += m / cluster.mem_ratios[best]
            cluster._placements[vm.vm_id] = (host, best, v, m)
            cluster._requests[vm.vm_id] = vm
            if cluster.recorder is not None and cluster.recorder.enabled:
                cluster.recorder.record_admission(
                    AdmissionRecord(
                        vm_id=vm.vm_id,
                        host=cluster.machines[host].name,
                        hosted_ratio=float(cluster.ratios[best]),
                        growth=0,
                        pooled=True,
                    )
                )
            return PlacementRecord(
                vm.vm_id, host, float(cluster.ratios[best]), pooled=True
            )
    raise CapacityError(f"host {host} cannot take VM {vm.vm_id}")


def naive_remove(cluster, vm_id: str) -> None:
    """Remove a placed VM (original implementation)."""
    try:
        host, li, v, m = cluster._placements.pop(vm_id)
    except KeyError:
        raise CapacityError(f"VM {vm_id} is not placed") from None
    cluster._requests.pop(vm_id, None)
    r = cluster.ratios[li]
    cluster.vnode_vcpus[li, host] -= v
    required = (
        0.0
        if cluster.vnode_vcpus[li, host] == 0
        else math.ceil(cluster.vnode_vcpus[li, host] / r)
    )
    release = cluster.vnode_cpus[li, host] - required
    cluster.vnode_cpus[li, host] = required
    cluster.alloc_cpu[host] -= release
    cluster.alloc_mem[host] -= m / cluster.mem_ratios[li]
    if cluster.alloc_mem[host] < CAPACITY_EPSILON:
        cluster.alloc_mem[host] = 0.0
