"""``repro bench engine`` — placement-kernel micro-benchmark.

Measures the vector engine's event throughput (arrivals + departures
processed per second) for every placement kernel on the same generated
workloads:

* ``incremental`` — the allocation-free kernel in
  :mod:`repro.simulator.vectorpool` (dirty-host bookkeeping, candidate
  masks, shape-keyed masked-score cache);
* ``pruned`` — the hierarchical candidate-pruning kernel in
  :mod:`repro.simulator.prunekernel` (partition maxima and candidate
  counters on top of the incremental caches, sublinear ``select()``);
* ``naive`` — the retained pre-change reference in
  :mod:`repro.simulator.refkernel`, run end to end through the
  pre-change flow (heap drain, allocating selection), so speedups are
  measured against the engine as it existed before the rewrite.

Every cell verifies that all kernels produce identical placements,
rejections, pooling counts and timelines before its timing is trusted
— a benchmark of a wrong kernel is worthless.  Per-op timers go
through :class:`repro.obs.metrics.MetricsRegistry` (the ``select_s``
timer the engine already maintains), identically for every arm.

The grid has three tiers.  **Standard** cells carry the full policy
grid at the committed load factor; **scale** cells (``scale_hosts``,
typically 50k and 100k) run a policy subset at a reduced load factor so
the naive baseline arm — milliseconds per event at 100k hosts — stays
affordable, and report a peak-RSS memory column next to throughput;
**shard** cells (``shard_hosts``) time the :mod:`repro.sharding`
dispatcher against the single-process ``pruned`` kernel, one cell per
shard count.  Every cell is constructed through
:class:`repro.api.RunSpec` — the bench times exactly what
``repro.api.run`` executes.
``peak_rss_mb`` is ``ru_maxrss``, the *process-lifetime high-water
mark*: it never decreases across arms or cells, so read it as "the run
up to and including this arm fit in this much memory", not as a
per-arm footprint.

The committed ``BENCH_engine.json`` is this module's output on the
full grid; :func:`compare_engine_bench` checks a fresh (usually
smaller) run against it **per cell and per kernel ratio** — absolute
events/sec are machine-dependent, the kernel-vs-naive ratios mostly
are not — with a generous tolerance for noisy CI runners.  Cells where
a kernel is *slower* than naive (ratio < 1, e.g. ``incremental`` /
``first_fit`` on small clusters, where per-event dirty-host
bookkeeping costs more than the tiny full scan it avoids) are reported
explicitly as crossovers by :func:`crossover_report` rather than
hidden inside a global average; docs/ARCHITECTURE.md discusses the
small-cluster crossover.
"""

from __future__ import annotations

import os
import platform
import resource
import sys
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional

import numpy as np

from repro.api import RunSpec, build_machines, build_simulation, build_workload
from repro.core.errors import ReproError
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry
from repro.simulator.vectorpool import KERNELS, POLICIES
from repro.workload.catalog import PROVIDERS

__all__ = [
    "EngineBenchSpec",
    "run_engine_bench",
    "compare_engine_bench",
    "crossover_report",
]

#: Schema version of the JSON payload (bump on incompatible change).
#: 2: per-kernel ``speedups`` + ``peak_rss_mb`` columns, scale-tier
#: cells (``tier`` field, ``scale_*`` grid keys), third kernel.
#: 3: ``shards`` column on every cell, shard-tier cells (``shard_*``
#: grid keys) timing the :mod:`repro.sharding` dispatcher against the
#: single-process ``pruned`` kernel; cells construct through
#: :class:`repro.api.RunSpec`.
SCHEMA = 3

#: The bench's fixed workload mix (1:1 / 2:1 / 3:1 percentages).
_BENCH_MIX = (40.0, 30.0, 30.0)


class BenchError(ReproError):
    """A benchmark invariant failed (kernel mismatch, bad baseline...)."""


@dataclass(frozen=True, slots=True)
class EngineBenchSpec:
    """One engine-benchmark grid.

    ``vms_per_host`` scales the workload with the cluster so load (and
    therefore per-event work) stays comparable across sizes; the
    defaults reproduce the committed ``BENCH_engine.json`` grid.

    ``scale_hosts`` adds the datacenter-scale tier: those cells run
    only ``scale_policies`` at ``scale_vms_per_host`` load so the
    naive reference arm stays tractable at 100k hosts.  Empty (the
    default) skips the tier entirely.

    ``shard_hosts`` adds the shard tier: each cell times the
    :class:`repro.sharding.ShardedSimulation` dispatcher (hash router,
    one worker process per shard) against the single-process ``pruned``
    kernel on the same workload — the speedup the two-level
    architecture buys over the fastest serial kernel.  The serial arm
    gets the warmup slice; the sharded arm deliberately does not (its
    workers are fresh processes either way, and its timing *includes*
    pool start-up — that cost is real).
    """

    hosts: tuple[int, ...] = (500, 2000, 5000)
    policies: tuple[str, ...] = tuple(POLICIES)
    provider: str = "azure"
    seed: int = 7
    vms_per_host: float = 4.0
    host_cpus: int = 48
    host_mem_gb: float = 192.0
    warmup_vms: int = 2000
    verify: bool = True
    scale_hosts: tuple[int, ...] = ()
    scale_policies: tuple[str, ...] = ("first_fit", "best_fit", "progress")
    scale_vms_per_host: float = 0.5
    scale_warmup_vms: int = 200
    shard_hosts: tuple[int, ...] = ()
    shard_counts: tuple[int, ...] = (4,)
    shard_policies: tuple[str, ...] = ("progress",)
    shard_vms_per_host: float = 0.5
    shard_warmup_vms: int = 200

    def __post_init__(self) -> None:
        unknown = [
            p
            for p in (*self.policies, *self.scale_policies, *self.shard_policies)
            if p not in POLICIES
        ]
        if unknown:
            raise BenchError(f"unknown policies {unknown}; expected {POLICIES}")
        if self.provider not in PROVIDERS:
            raise BenchError(
                f"unknown provider {self.provider!r}; expected {sorted(PROVIDERS)}"
            )
        if not self.hosts or any(n <= 0 for n in self.hosts):
            raise BenchError(f"hosts must be positive, got {self.hosts}")
        if any(n <= 0 for n in self.scale_hosts):
            raise BenchError(
                f"scale hosts must be positive, got {self.scale_hosts}"
            )
        if any(n <= 0 for n in self.shard_hosts):
            raise BenchError(
                f"shard hosts must be positive, got {self.shard_hosts}"
            )
        if any(n < 2 for n in self.shard_counts):
            raise BenchError(
                f"shard counts must be >= 2 (1 is the serial arm), "
                f"got {self.shard_counts}"
            )


def _result_fingerprint(result) -> tuple:
    return (
        {k: (v.host, v.hosted_ratio, v.pooled) for k, v in result.placements.items()},
        tuple(result.rejections),
        result.pooled_placements,
        result.timeline.times,
        result.timeline.alloc_cpu,
        result.timeline.alloc_mem,
    )


def _peak_rss_mb() -> float:
    """Process-lifetime peak resident set, in MiB (monotonic)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _cell_run_spec(
    spec: EngineBenchSpec,
    num_hosts: int,
    policy: str,
    kernel: str,
    vms_per_host: float,
    shards: int = 1,
    workers: int = 1,
) -> RunSpec:
    """One benchmark arm as a :class:`repro.api.RunSpec`.

    The spec is the sole construction path: workload, fleet and engine
    all materialize from it through the :mod:`repro.api` builders, so
    the bench times exactly what ``repro.api.run`` would execute.
    """
    return RunSpec(
        provider=spec.provider,
        mix=_BENCH_MIX,
        target_population=max(1, round(vms_per_host * num_hosts)),
        seed=spec.seed,
        num_hosts=num_hosts,
        host_cpus=spec.host_cpus,
        host_mem_gb=spec.host_mem_gb,
        policy=policy,
        kernel=kernel,
        shards=shards,
        workers=workers,
    )


def _run_tier(
    spec: EngineBenchSpec,
    hosts: tuple[int, ...],
    policies: tuple[str, ...],
    vms_per_host: float,
    warmup_vms: int,
    tier: str,
    say: Callable[[str], None],
) -> list[dict]:
    cells = []
    for num_hosts in hosts:
        trace_spec = _cell_run_spec(
            spec, num_hosts, policies[0], "pruned", vms_per_host
        )
        workload = build_workload(trace_spec)
        machines = build_machines(trace_spec)
        num_events = len(workload) + sum(
            1 for vm in workload if vm.departure is not None
        )
        warmup = workload[:warmup_vms]
        for policy in policies:
            arms = {}
            for kernel in KERNELS:
                metrics = MetricsRegistry()
                sim = build_simulation(
                    _cell_run_spec(spec, num_hosts, policy, kernel, vms_per_host),
                    machines,
                    metrics=metrics,
                )
                sim.run(warmup)
                t0 = perf_counter()
                result = sim.run(workload)
                wall_s = perf_counter() - t0
                select = metrics.timer(metric_names.SELECT_S)
                arms[kernel] = {
                    "result": result,
                    "payload": {
                        "wall_s": wall_s,
                        "events_per_s": num_events / wall_s,
                        "select_mean_us": (
                            1e6 * select.total_s / select.count if select.count else 0.0
                        ),
                        "select_ops_per_s": select.rate,
                        "peak_rss_mb": _peak_rss_mb(),
                    },
                }
            if spec.verify:
                fingerprints = {
                    k: _result_fingerprint(a["result"]) for k, a in arms.items()
                }
                first, *rest = fingerprints.values()
                if any(fp != first for fp in rest):
                    raise BenchError(
                        f"kernels disagree on hosts={num_hosts} policy={policy}; "
                        "run `repro audit` to localize the divergence"
                    )
            result = arms["incremental"]["result"]
            naive_wall = arms["naive"]["payload"]["wall_s"]
            speedups = {
                kernel: naive_wall / arm["payload"]["wall_s"]
                for kernel, arm in arms.items()
                if kernel != "naive"
            }
            cells.append(
                {
                    "num_hosts": num_hosts,
                    "policy": policy,
                    "tier": tier,
                    "shards": 1,
                    "num_events": num_events,
                    "placed": len(result.placements),
                    "rejected": len(result.rejections),
                    "pooled": result.pooled_placements,
                    "verified": spec.verify,
                    "kernels": {k: a["payload"] for k, a in arms.items()},
                    "speedups": speedups,
                    # Legacy column (schema 1 compatibility for readers):
                    # the incremental-vs-naive ratio.
                    "speedup": speedups["incremental"],
                }
            )
            say(
                f"hosts={num_hosts:6d} {policy:20s} "
                f"pruned {arms['pruned']['payload']['events_per_s']:9.0f} ev/s "
                f"({speedups['pruned']:.2f}x)  "
                f"incremental {arms['incremental']['payload']['events_per_s']:9.0f} ev/s "
                f"({speedups['incremental']:.2f}x)  "
                f"naive {arms['naive']['payload']['events_per_s']:9.0f} ev/s  "
                f"rss {arms['naive']['payload']['peak_rss_mb']:.0f}MB"
            )
    return cells


def _run_shard_tier(
    spec: EngineBenchSpec, say: Callable[[str], None]
) -> list[dict]:
    """Shard-tier cells: dispatcher-vs-serial on the ``pruned`` kernel.

    The serial arm is the single-process ``pruned`` kernel (the fastest
    serial configuration — the honest baseline); each shard count then
    runs the same workload through the dispatcher with one worker
    process per shard.  ``spec.verify`` replays the sharded run inline
    (``workers=1``) and requires the result to match exactly — the
    determinism contract, not a decision-equivalence claim: sharding
    *changes* placement decisions (each VM only sees its shard's
    hosts), so the cell also records the serial arm's placed count for
    the routing-cost comparison.

    Two speedups are recorded.  ``sharded`` is the measured pool
    wall-clock ratio — on a machine with fewer cores than shards the
    workers timeshare and this can drop below 1×.  ``critical_path``
    divides the serial wall by the *slowest shard's* uncontended wall,
    taken from the inline verify pass where shards run one at a time —
    the wall-clock the pool converges to once every shard has its own
    core.  Both come from the same run; neither is a projection.
    """
    cells = []
    for num_hosts in spec.shard_hosts:
        serial_spec = _cell_run_spec(
            spec, num_hosts, spec.shard_policies[0], "pruned",
            spec.shard_vms_per_host,
        )
        workload = build_workload(serial_spec)
        machines = build_machines(serial_spec)
        num_events = len(workload) + sum(
            1 for vm in workload if vm.departure is not None
        )
        warmup = workload[: spec.shard_warmup_vms]
        for policy in spec.shard_policies:
            serial_spec = _cell_run_spec(
                spec, num_hosts, policy, "pruned", spec.shard_vms_per_host
            )
            serial_sim = build_simulation(serial_spec, machines)
            serial_sim.run(warmup)
            t0 = perf_counter()
            serial_result = serial_sim.run(workload)
            serial_wall = perf_counter() - t0
            serial_payload = {
                "wall_s": serial_wall,
                "events_per_s": num_events / serial_wall,
                "peak_rss_mb": _peak_rss_mb(),
            }
            for shards in spec.shard_counts:
                sharded_spec = serial_spec.replace(shards=shards, workers=shards)
                sim = build_simulation(sharded_spec, machines)
                t0 = perf_counter()
                result = sim.run(workload)
                wall_s = perf_counter() - t0
                speedups = {"sharded": serial_wall / wall_s}
                kernels = {
                    "serial": dict(serial_payload),
                    "sharded": {
                        "wall_s": wall_s,
                        "events_per_s": num_events / wall_s,
                        "peak_rss_mb": _peak_rss_mb(),
                    },
                }
                if spec.verify:
                    inline_sim = build_simulation(
                        sharded_spec.replace(workers=1), machines
                    )
                    inline = inline_sim.run(workload)
                    if _result_fingerprint(inline) != _result_fingerprint(result):
                        raise BenchError(
                            f"sharded run is not schedule-invariant at "
                            f"hosts={num_hosts} policy={policy} shards={shards}: "
                            "pooled and inline execution disagree"
                        )
                    critical_s = max(inline_sim.shard_walls)
                    kernels["inline"] = {
                        "wall_s": sum(inline_sim.shard_walls),
                        "critical_path_s": critical_s,
                        "events_per_s": num_events / critical_s,
                        "peak_rss_mb": _peak_rss_mb(),
                    }
                    speedups["critical_path"] = serial_wall / critical_s
                cells.append(
                    {
                        "num_hosts": num_hosts,
                        "policy": policy,
                        "tier": "shard",
                        "shards": shards,
                        "num_events": num_events,
                        "placed": len(result.placements),
                        "rejected": len(result.rejections),
                        "pooled": result.pooled_placements,
                        "serial_placed": len(serial_result.placements),
                        "verified": spec.verify,
                        "kernels": kernels,
                        "speedups": speedups,
                        "speedup": speedups["sharded"],
                    }
                )
                critical = (
                    f"critical path {speedups['critical_path']:.2f}x  "
                    if "critical_path" in speedups
                    else ""
                )
                say(
                    f"hosts={num_hosts:6d} {policy:20s} "
                    f"{shards} shards {num_events / wall_s:9.0f} ev/s "
                    f"({speedups['sharded']:.2f}x)  {critical}"
                    f"serial pruned {serial_payload['events_per_s']:9.0f} ev/s  "
                    f"placed {len(result.placements)} "
                    f"(serial {len(serial_result.placements)})"
                )
    return cells


def run_engine_bench(
    spec: EngineBenchSpec = EngineBenchSpec(),
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the grid and return the JSON-ready payload.

    For each (cluster size, policy) cell every kernel replays the same
    workload once, after a shared warmup slice; with ``spec.verify``
    the results must agree exactly or :class:`BenchError` is raised.
    ``progress`` (when given) receives one line per cell.
    """
    say = progress or (lambda line: None)
    cells = _run_tier(
        spec, spec.hosts, spec.policies, spec.vms_per_host,
        spec.warmup_vms, "standard", say,
    )
    if spec.scale_hosts:
        cells += _run_tier(
            spec, spec.scale_hosts, spec.scale_policies,
            spec.scale_vms_per_host, spec.scale_warmup_vms, "scale", say,
        )
    shard_cells: list[dict] = []
    if spec.shard_hosts:
        shard_cells = _run_shard_tier(spec, say)
        cells += shard_cells
    headline = max(
        (c for c in cells if c["tier"] != "shard"),
        key=lambda c: (
            c["num_hosts"],
            c["policy"] == "progress",
            c["speedups"]["pruned"],
        ),
    )
    payload = {
        "schema": SCHEMA,
        "grid": {
            "hosts": list(spec.hosts),
            "policies": list(spec.policies),
            "provider": spec.provider,
            "seed": spec.seed,
            "vms_per_host": spec.vms_per_host,
            "host_cpus": spec.host_cpus,
            "host_mem_gb": spec.host_mem_gb,
            "warmup_vms": spec.warmup_vms,
            "scale_hosts": list(spec.scale_hosts),
            "scale_policies": list(spec.scale_policies),
            "scale_vms_per_host": spec.scale_vms_per_host,
            "scale_warmup_vms": spec.scale_warmup_vms,
            "shard_hosts": list(spec.shard_hosts),
            "shard_counts": list(spec.shard_counts),
            "shard_policies": list(spec.shard_policies),
            "shard_vms_per_host": spec.shard_vms_per_host,
            "shard_warmup_vms": spec.shard_warmup_vms,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "headline": {
            "num_hosts": headline["num_hosts"],
            "policy": headline["policy"],
            "speedup": headline["speedup"],
            "speedups": headline["speedups"],
            "events_per_s": headline["kernels"]["pruned"]["events_per_s"],
        },
        "cells": cells,
    }
    if shard_cells:
        best = max(shard_cells, key=lambda c: (c["num_hosts"], c["shards"]))
        payload["shard_headline"] = {
            "num_hosts": best["num_hosts"],
            "policy": best["policy"],
            "shards": best["shards"],
            "speedup": best["speedup"],
            "speedups": dict(best["speedups"]),
            "events_per_s": best["kernels"]["sharded"]["events_per_s"],
        }
    return payload


def _cell_speedups(cell: dict) -> dict:
    """Per-kernel ratio dict of a cell, tolerating schema-1 shapes."""
    speedups = cell.get("speedups")
    if speedups is None:
        speedups = {"incremental": cell["speedup"]}
    return speedups


def crossover_report(payload: dict) -> list[str]:
    """Cells where a kernel runs *slower* than naive, one line each.

    A ratio below 1.0 is not automatically a bug — on small clusters
    the incremental kernel's per-event bookkeeping can cost more than
    the tiny full scan it avoids (see docs/ARCHITECTURE.md) — but it
    must be visible, not averaged away.  ``repro bench engine`` prints
    these lines after every run and every ``--check``.
    """
    lines = []
    for cell in payload.get("cells", ()):
        base = "serial pruned" if cell.get("tier") == "shard" else "naive"
        for kernel, ratio in sorted(_cell_speedups(cell).items()):
            if ratio < 1.0:
                lines.append(
                    f"hosts={cell['num_hosts']} policy={cell['policy']}: "
                    f"{kernel} {ratio:.2f}x vs {base} (crossover: {base} "
                    "wins this cell)"
                )
    return lines


def compare_engine_bench(
    current: dict, baseline: dict, tolerance: float = 0.5
) -> list[str]:
    """Compare a fresh run against a committed baseline.

    Only **speedup ratios** are compared — per matching cell and per
    kernel, each required to reach ``baseline * (1 - tolerance)``;
    absolute events/sec are reported nowhere near a threshold because
    they track the machine, not the code.  Known-crossover cells
    (baseline ratio already below 1.0) are flagged as such in the
    problem text so a small-cluster crossover reads differently from a
    genuine regression.  Returns a list of problem descriptions —
    empty means the run holds the baseline's contract.
    """
    if not 0 <= tolerance < 1:
        raise BenchError(f"tolerance must be in [0, 1), got {tolerance}")
    for payload, name in ((current, "current"), (baseline, "baseline")):
        if payload.get("schema") != SCHEMA:
            raise BenchError(
                f"{name} payload has schema {payload.get('schema')!r}, "
                f"expected {SCHEMA}"
            )
    problems = []
    baseline_cells = {
        (c["num_hosts"], c["policy"], c.get("shards", 1)): c
        for c in baseline["cells"]
    }
    matched = 0
    for cell in current["cells"]:
        ref = baseline_cells.get(
            (cell["num_hosts"], cell["policy"], cell.get("shards", 1))
        )
        if ref is None:
            continue
        matched += 1
        ratios = _cell_speedups(cell)
        for kernel, ref_ratio in sorted(_cell_speedups(ref).items()):
            ratio = ratios.get(kernel)
            if ratio is None:
                continue
            floor = ref_ratio * (1 - tolerance)
            if ratio < floor:
                note = (
                    " [known crossover cell: baseline already < 1x]"
                    if ref_ratio < 1.0
                    else ""
                )
                problems.append(
                    f"hosts={cell['num_hosts']} policy={cell['policy']} "
                    f"kernel={kernel}: speedup {ratio:.2f}x fell below "
                    f"{floor:.2f}x (baseline {ref_ratio:.2f}x, "
                    f"tolerance {tolerance:.0%}){note}"
                )
    if not matched:
        problems.append(
            "no benchmark cell matches the baseline grid "
            f"(baseline has {sorted(baseline_cells)})"
        )
    return problems
