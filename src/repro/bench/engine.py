"""``repro bench engine`` — placement-kernel micro-benchmark.

Measures the vector engine's event throughput (arrivals + departures
processed per second) for both placement kernels on the same generated
workloads:

* ``incremental`` — the allocation-free kernel in
  :mod:`repro.simulator.vectorpool` (dirty-host bookkeeping, candidate
  masks, shape-keyed masked-score cache);
* ``naive`` — the retained pre-change reference in
  :mod:`repro.simulator.refkernel`, run end to end through the
  pre-change flow (heap drain, allocating selection), so speedups are
  measured against the engine as it existed before the rewrite.

Every cell verifies that the two kernels produce identical placements,
rejections, pooling counts and timelines before its timing is trusted
— a benchmark of a wrong kernel is worthless.  Per-op timers go
through :class:`repro.obs.metrics.MetricsRegistry` (the ``select_s``
timer the engine already maintains), identically for both arms.

The committed ``BENCH_engine.json`` is this module's output on the
full grid; :func:`compare_engine_bench` checks a fresh (usually
smaller) run against it on **speedup ratios only** — absolute
events/sec are machine-dependent, the incremental-vs-naive ratio
mostly is not — with a generous tolerance for noisy CI runners.
"""

from __future__ import annotations

import platform
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional

import numpy as np

from repro.core.errors import ReproError
from repro.hardware.machine import MachineSpec
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry
from repro.simulator.vectorpool import KERNELS, POLICIES, VectorSimulation
from repro.workload.catalog import PROVIDERS
from repro.workload.generator import WorkloadParams, generate_workload

__all__ = ["EngineBenchSpec", "run_engine_bench", "compare_engine_bench"]

#: Schema version of the JSON payload (bump on incompatible change).
SCHEMA = 1


class BenchError(ReproError):
    """A benchmark invariant failed (kernel mismatch, bad baseline...)."""


@dataclass(frozen=True, slots=True)
class EngineBenchSpec:
    """One engine-benchmark grid.

    ``vms_per_host`` scales the workload with the cluster so load (and
    therefore per-event work) stays comparable across sizes; the
    defaults reproduce the committed ``BENCH_engine.json`` grid.
    """

    hosts: tuple[int, ...] = (500, 2000, 5000)
    policies: tuple[str, ...] = tuple(POLICIES)
    provider: str = "azure"
    seed: int = 7
    vms_per_host: float = 4.0
    host_cpus: int = 48
    host_mem_gb: float = 192.0
    warmup_vms: int = 2000
    verify: bool = True

    def __post_init__(self) -> None:
        unknown = [p for p in self.policies if p not in POLICIES]
        if unknown:
            raise BenchError(f"unknown policies {unknown}; expected {POLICIES}")
        if self.provider not in PROVIDERS:
            raise BenchError(
                f"unknown provider {self.provider!r}; expected {sorted(PROVIDERS)}"
            )
        if not self.hosts or any(n <= 0 for n in self.hosts):
            raise BenchError(f"hosts must be positive, got {self.hosts}")


def _result_fingerprint(result) -> tuple:
    return (
        {k: (v.host, v.hosted_ratio, v.pooled) for k, v in result.placements.items()},
        tuple(result.rejections),
        result.pooled_placements,
        result.timeline.times,
        result.timeline.alloc_cpu,
        result.timeline.alloc_mem,
    )


def run_engine_bench(
    spec: EngineBenchSpec = EngineBenchSpec(),
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the grid and return the JSON-ready payload.

    For each (cluster size, policy) cell both kernels replay the same
    workload once, after a shared warmup slice; with ``spec.verify``
    the two results must agree exactly or :class:`BenchError` is
    raised.  ``progress`` (when given) receives one line per cell.
    """
    say = progress or (lambda line: None)
    catalog = PROVIDERS[spec.provider]
    cells = []
    for num_hosts in spec.hosts:
        params = WorkloadParams(
            catalog=catalog,
            level_mix=(40, 30, 30),
            target_population=max(1, round(spec.vms_per_host * num_hosts)),
            seed=spec.seed,
        )
        workload = generate_workload(params)
        num_events = len(workload) + sum(
            1 for vm in workload if vm.departure is not None
        )
        warmup = workload[: spec.warmup_vms]
        machines = [
            MachineSpec(f"bench-pm-{i}", spec.host_cpus, spec.host_mem_gb)
            for i in range(num_hosts)
        ]
        for policy in spec.policies:
            arms = {}
            for kernel in KERNELS:
                metrics = MetricsRegistry()
                sim = VectorSimulation(
                    machines, policy=policy, kernel=kernel, metrics=metrics
                )
                sim.run(warmup)
                t0 = perf_counter()
                result = sim.run(workload)
                wall_s = perf_counter() - t0
                select = metrics.timer(metric_names.SELECT_S)
                arms[kernel] = {
                    "result": result,
                    "payload": {
                        "wall_s": wall_s,
                        "events_per_s": num_events / wall_s,
                        "select_mean_us": (
                            1e6 * select.total_s / select.count if select.count else 0.0
                        ),
                        "select_ops_per_s": select.rate,
                    },
                }
            if spec.verify:
                fingerprints = {
                    k: _result_fingerprint(a["result"]) for k, a in arms.items()
                }
                first, *rest = fingerprints.values()
                if any(fp != first for fp in rest):
                    raise BenchError(
                        f"kernels disagree on hosts={num_hosts} policy={policy}; "
                        "run `repro audit` to localize the divergence"
                    )
            result = arms["incremental"]["result"]
            speedup = (
                arms["naive"]["payload"]["wall_s"]
                / arms["incremental"]["payload"]["wall_s"]
            )
            cells.append(
                {
                    "num_hosts": num_hosts,
                    "policy": policy,
                    "num_events": num_events,
                    "placed": len(result.placements),
                    "rejected": len(result.rejections),
                    "pooled": result.pooled_placements,
                    "verified": spec.verify,
                    "kernels": {k: a["payload"] for k, a in arms.items()},
                    "speedup": speedup,
                }
            )
            say(
                f"hosts={num_hosts:6d} {policy:20s} "
                f"incremental {arms['incremental']['payload']['events_per_s']:9.0f} ev/s  "
                f"naive {arms['naive']['payload']['events_per_s']:9.0f} ev/s  "
                f"speedup {speedup:.2f}x"
            )
    headline = max(
        cells,
        key=lambda c: (c["num_hosts"], c["policy"] == "progress", c["speedup"]),
    )
    return {
        "schema": SCHEMA,
        "grid": {
            "hosts": list(spec.hosts),
            "policies": list(spec.policies),
            "provider": spec.provider,
            "seed": spec.seed,
            "vms_per_host": spec.vms_per_host,
            "host_cpus": spec.host_cpus,
            "host_mem_gb": spec.host_mem_gb,
            "warmup_vms": spec.warmup_vms,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "headline": {
            "num_hosts": headline["num_hosts"],
            "policy": headline["policy"],
            "speedup": headline["speedup"],
            "events_per_s": headline["kernels"]["incremental"]["events_per_s"],
        },
        "cells": cells,
    }


def compare_engine_bench(
    current: dict, baseline: dict, tolerance: float = 0.5
) -> list[str]:
    """Compare a fresh run against a committed baseline.

    Only **speedup ratios** are compared (per matching cell, and the
    headline), each required to reach ``baseline * (1 - tolerance)``;
    absolute events/sec are reported nowhere near a threshold because
    they track the machine, not the code.  Returns a list of problem
    descriptions — empty means the run holds the baseline's contract.
    """
    if not 0 <= tolerance < 1:
        raise BenchError(f"tolerance must be in [0, 1), got {tolerance}")
    for payload, name in ((current, "current"), (baseline, "baseline")):
        if payload.get("schema") != SCHEMA:
            raise BenchError(
                f"{name} payload has schema {payload.get('schema')!r}, "
                f"expected {SCHEMA}"
            )
    problems = []
    baseline_cells = {
        (c["num_hosts"], c["policy"]): c for c in baseline["cells"]
    }
    matched = 0
    for cell in current["cells"]:
        ref = baseline_cells.get((cell["num_hosts"], cell["policy"]))
        if ref is None:
            continue
        matched += 1
        floor = ref["speedup"] * (1 - tolerance)
        if cell["speedup"] < floor:
            problems.append(
                f"hosts={cell['num_hosts']} policy={cell['policy']}: "
                f"speedup {cell['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {ref['speedup']:.2f}x, "
                f"tolerance {tolerance:.0%})"
            )
    if not matched:
        problems.append(
            "no benchmark cell matches the baseline grid "
            f"(baseline has {sorted(baseline_cells)})"
        )
    return problems
