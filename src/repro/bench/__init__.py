"""Micro-benchmark harness for the repro engines (``repro bench``).

Currently one target: ``repro bench engine`` profiles the vector
engine's events/sec against cluster size for every placement kernel
(incremental and pruned vs the naive reference) across every policy,
verifying placement equality as it measures, with an optional
datacenter-scale tier (50k/100k hosts) that adds a peak-RSS memory
column.  The committed ``BENCH_engine.json`` at the repo root is this
harness's output and the CI perf-smoke baseline.
"""

from repro.bench.engine import (
    EngineBenchSpec,
    compare_engine_bench,
    crossover_report,
    run_engine_bench,
)

__all__ = [
    "EngineBenchSpec",
    "run_engine_bench",
    "compare_engine_bench",
    "crossover_report",
]
