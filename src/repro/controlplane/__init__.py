"""Online control plane: the service view over a SlackVM cluster."""

from repro.controlplane.controller import (
    CloudController,
    ClusterState,
    VMState,
    VMTicket,
)

__all__ = ["CloudController", "VMTicket", "VMState", "ClusterState"]
