"""An online control plane over a SlackVM cluster.

The simulation packages replay *traces*; this module is the service
view — an OpenStack-Nova-like API a provider integrates against:

* ``request(spec, level)`` schedules a VM through the filter/weigher
  pipeline and returns a ticket (ACTIVE on success, PENDING when no
  host currently fits);
* ``delete(vm_id)`` releases the VM and opportunistically retries the
  pending queue (capacity just freed up);
* inspection calls expose cluster state, per-host agent reports and an
  audit log of every scheduling decision.

Single-threaded by design: the paper's control planes serialize
placement decisions per cluster, and so do we.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Optional, Sequence

from repro.core.config import SlackVMConfig
from repro.core.errors import CapacityError, ConfigError
from repro.core.types import OversubscriptionLevel, ResourceVector, VMRequest, VMSpec
from repro.hardware.machine import MachineSpec
from repro.localsched.agent import LocalScheduler
from repro.scheduling.baselines import slackvm_scheduler
from repro.scheduling.global_scheduler import ScoreBasedScheduler

__all__ = ["VMState", "VMTicket", "ClusterState", "CloudController"]


class VMState(str, Enum):
    ACTIVE = "active"  # placed and running
    PENDING = "pending"  # admitted to the queue, waiting for capacity
    DELETED = "deleted"


@dataclass
class VMTicket:
    """The controller's record of one VM request."""

    vm_id: str
    spec: VMSpec
    level: OversubscriptionLevel
    state: VMState
    host: Optional[int] = None
    pooled: bool = False
    tenant: Optional[str] = None


@dataclass(frozen=True)
class ClusterState:
    """Aggregate snapshot for dashboards/capacity planning."""

    num_hosts: int
    active_vms: int
    pending_vms: int
    allocated: ResourceVector
    capacity: ResourceVector

    @property
    def cpu_allocation_share(self) -> float:
        return self.allocated.cpu / self.capacity.cpu

    @property
    def mem_allocation_share(self) -> float:
        return self.allocated.mem / self.capacity.mem


class CloudController:
    """VM lifecycle service over a cluster of SlackVM local schedulers."""

    def __init__(
        self,
        machines: Sequence[MachineSpec],
        config: SlackVMConfig | None = None,
        scheduler: ScoreBasedScheduler | None = None,
        max_pending: int = 1000,
    ):
        if not machines:
            raise ConfigError("a controller needs at least one machine")
        if max_pending < 0:
            raise ConfigError("max_pending must be >= 0")
        self.config = config or SlackVMConfig()
        self.scheduler = scheduler or slackvm_scheduler()
        self.hosts: list[LocalScheduler] = [
            LocalScheduler(m, self.config) for m in machines
        ]
        self.max_pending = max_pending
        self._tickets: dict[str, VMTicket] = {}
        self._pending: list[str] = []  # FIFO of vm_ids awaiting capacity
        self._ids = itertools.count()
        #: Append-only audit log of (action, vm_id, detail) tuples.
        self.audit_log: list[tuple[str, str, str]] = []

    # -- lifecycle API -------------------------------------------------------

    def request(
        self,
        spec: VMSpec,
        level: OversubscriptionLevel,
        tenant: Optional[str] = None,
        metadata: Optional[Mapping] = None,
    ) -> VMTicket:
        """Schedule a new VM; returns an ACTIVE or PENDING ticket."""
        if not any(
            lv.ratio == level.ratio and lv.mem_ratio == level.mem_ratio
            for lv in self.config.levels
        ):
            raise ConfigError(f"level {level.name} is not offered by this cluster")
        vm_id = f"vm-{next(self._ids):06d}"
        ticket = VMTicket(vm_id=vm_id, spec=spec, level=level,
                          state=VMState.PENDING, tenant=tenant)
        self._tickets[vm_id] = ticket
        if not self._try_place(ticket, dict(metadata or {})):
            if len(self._pending) >= self.max_pending:
                del self._tickets[vm_id]
                raise CapacityError(
                    f"pending queue full ({self.max_pending}); request rejected"
                )
            self._pending.append(vm_id)
            self.audit_log.append(("queue", vm_id, "no host fits; queued"))
        return ticket

    def _try_place(self, ticket: VMTicket, metadata: dict) -> bool:
        request = VMRequest(
            vm_id=ticket.vm_id, spec=ticket.spec, level=ticket.level,
            metadata=metadata,
        )
        idx = self.scheduler.select(self.hosts, request)
        if idx is None:
            return False
        placement = self.hosts[idx].deploy(request)
        ticket.state = VMState.ACTIVE
        ticket.host = idx
        ticket.pooled = placement.pooled
        self.audit_log.append(
            ("place", ticket.vm_id,
             f"host {idx} vNode {placement.hosted_level.name}"
             + (" (pooled)" if placement.pooled else ""))
        )
        return True

    def delete(self, vm_id: str) -> None:
        """Release a VM (ACTIVE or PENDING) and retry the queue."""
        try:
            ticket = self._tickets[vm_id]
        except KeyError:
            raise CapacityError(f"unknown VM {vm_id}") from None
        if ticket.state is VMState.DELETED:
            raise CapacityError(f"VM {vm_id} already deleted")
        if ticket.state is VMState.ACTIVE:
            self.hosts[ticket.host].remove(vm_id)
        else:
            self._pending.remove(vm_id)
        ticket.state = VMState.DELETED
        ticket.host = None
        self.audit_log.append(("delete", vm_id, ""))
        self._drain_pending()

    def _drain_pending(self) -> None:
        """FIFO retry: place whatever now fits (head-of-line may still
        be blocked while smaller requests behind it succeed)."""
        still_waiting: list[str] = []
        for vm_id in self._pending:
            ticket = self._tickets[vm_id]
            if not self._try_place(ticket, {}):
                still_waiting.append(vm_id)
        self._pending = still_waiting

    # -- inspection ------------------------------------------------------------

    def ticket(self, vm_id: str) -> VMTicket:
        try:
            return self._tickets[vm_id]
        except KeyError:
            raise CapacityError(f"unknown VM {vm_id}") from None

    def list_vms(self, state: VMState | None = None) -> list[VMTicket]:
        tickets = list(self._tickets.values())
        if state is not None:
            tickets = [t for t in tickets if t.state is state]
        return tickets

    def describe_host(self, index: int) -> dict:
        return self.hosts[index].describe()

    def state(self) -> ClusterState:
        allocated = ResourceVector.zero()
        capacity = ResourceVector.zero()
        for host in self.hosts:
            allocated = allocated + host.allocation()
            capacity = capacity + host.machine.capacity
        return ClusterState(
            num_hosts=len(self.hosts),
            active_vms=sum(
                1 for t in self._tickets.values() if t.state is VMState.ACTIVE
            ),
            pending_vms=len(self._pending),
            allocated=allocated,
            capacity=capacity,
        )
