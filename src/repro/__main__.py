"""Allow ``python -m repro <subcommand>`` (same CLI as ``slackvm``)."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
