"""Dynamic oversubscription levels (paper §VIII future work).

A static vNode at level ``n:1`` always reserves ``ceil(vcpus / n)``
CPUs — the worst case where every hosted vCPU runs flat out.  A
*dynamic* vNode instead reserves enough CPUs for the *predicted peak
demand* of its VMs (never less than what a configured maximum ratio
allows), letting a lightly-used vNode shrink below its static
reservation and the PM admit more VMs.

Premium 1:1 vNodes are never dynamic: their selling point is the
worst-case guarantee.  Oversubscribed levels float between their sold
ratio (the reservation can only shrink, ``required <= ceil(v / n)``)
and a configured ``max_ratio`` cap (the reservation never drops below
``ceil(v / max_ratio)``, bounding contention even under mispredicted
load).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import SlackVMConfig
from repro.core.errors import CapacityError, ConfigError
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.simulator.engine import PlacementRecord, SimulationResult, Timeline
from repro.simulator.events import EventKind, workload_events
from repro.simulator.vectorpool import VectorCluster
from repro.dynamiclevels.predictor import analytic_peak_demand

__all__ = ["DynamicLevelParams", "DynamicLevelCluster", "DynamicLevelSimulation"]


@dataclass(frozen=True)
class DynamicLevelParams:
    """Knobs of the dynamic-level extension."""

    #: Hard cap on the effective oversubscription ratio: a vNode never
    #: reserves fewer CPUs than ``ceil(vcpus / max_ratio)``.
    max_ratio: float = 5.0
    #: Safety margin applied to predicted per-VM peaks.
    safety: float = 1.2

    def __post_init__(self) -> None:
        if self.max_ratio < 1:
            raise ConfigError(f"max_ratio must be >= 1, got {self.max_ratio}")
        if self.safety < 1:
            raise ConfigError(f"safety must be >= 1, got {self.safety}")


class DynamicLevelCluster(VectorCluster):
    """A :class:`VectorCluster` whose oversubscribed vNodes size by
    predicted peak demand instead of the static worst case."""

    def __init__(
        self,
        machines: Sequence[MachineSpec],
        config: SlackVMConfig,
        params: DynamicLevelParams | None = None,
    ):
        super().__init__(machines, config)
        self.params = params or DynamicLevelParams()
        # Predicted peak CPU demand per (level, host), in cores.
        self.peak_demand = np.zeros_like(self.vnode_vcpus)

    # -- sizing rule ---------------------------------------------------------

    def _required_cpus(self, li: int, host: int, vcpus: float, peak: float) -> float:
        """CPUs a vNode must own for ``vcpus`` exposed and ``peak`` predicted."""
        if vcpus == 0:
            return 0.0
        ratio = self.ratios[li]
        if ratio <= 1:
            # Premium stays worst-case: 1 CPU per vCPU.
            return float(math.ceil(vcpus / ratio))
        static = math.ceil(vcpus / ratio)
        floor = math.ceil(vcpus / self.params.max_ratio)
        predicted = math.ceil(peak)
        return float(min(static, max(floor, predicted)))

    # -- overridden admission/accounting --------------------------------------

    def feasibility(self, vm: VMRequest):
        li = self._vm_level_index(vm)
        v = vm.spec.vcpus
        m = vm.spec.mem_gb
        peak = analytic_peak_demand(vm, self.params.safety)
        free_mem = self.cap_mem - self.alloc_mem
        own_mem_ok = m / self.mem_ratios[li] <= free_mem + 1e-9
        n = self.num_hosts
        growth = np.empty(n)
        for host in range(n):
            required = self._required_cpus(
                li, host, self.vnode_vcpus[li, host] + v,
                self.peak_demand[li, host] + peak,
            )
            growth[host] = max(0.0, required - self.vnode_cpus[li, host])
        own_ok = own_mem_ok & (growth <= self.cap_cpu - self.alloc_cpu)
        feasible = own_ok.copy()
        if self.config.pooling and vm.level.ratio > 1:
            stricter = (self.ratios > 1) & (self.ratios < vm.level.ratio)
            if stricter.any():
                slack = (
                    self.vnode_cpus[stricter] * self.ratios[stricter, None]
                    - self.vnode_vcpus[stricter]
                )
                mem_ok = (
                    m / self.mem_ratios[stricter, None] <= free_mem[None, :] + 1e-9
                )
                feasible |= ((slack >= v) & mem_ok).any(axis=0)
        return feasible, growth, own_ok

    def deploy(self, vm: VMRequest, host: int) -> PlacementRecord:
        li = self._vm_level_index(vm)
        v = vm.spec.vcpus
        m = vm.spec.mem_gb
        peak = analytic_peak_demand(vm, self.params.safety)
        if vm.vm_id in self._placements:
            raise CapacityError(f"VM {vm.vm_id} already placed")
        free_mem = self.cap_mem[host] - self.alloc_mem[host]
        required = self._required_cpus(
            li, host, self.vnode_vcpus[li, host] + v,
            self.peak_demand[li, host] + peak,
        )
        growth = max(0.0, required - self.vnode_cpus[li, host])
        own_mem = m / self.mem_ratios[li]
        if (
            growth <= self.cap_cpu[host] - self.alloc_cpu[host]
            and own_mem <= free_mem + 1e-9
        ):
            self.vnode_cpus[li, host] += growth
            self.vnode_vcpus[li, host] += v
            self.peak_demand[li, host] += peak
            self.alloc_cpu[host] += growth
            self.alloc_mem[host] += own_mem
            self._placements[vm.vm_id] = (host, li, v, m)
            self._requests[vm.vm_id] = vm
            self._touch(host)  # keep the inherited score caches coherent
            return PlacementRecord(vm.vm_id, host, vm.level.ratio, pooled=False)
        if self.config.pooling and vm.level.ratio > 1:
            best = None
            for lj in range(len(self.ratios)):
                rj = self.ratios[lj]
                if not (1 < rj < vm.level.ratio):
                    continue
                slack = self.vnode_cpus[lj, host] * rj - self.vnode_vcpus[lj, host]
                if (
                    slack >= v
                    and m / self.mem_ratios[lj] <= free_mem + 1e-9
                    and (best is None or rj > self.ratios[best])
                ):
                    best = lj
            if best is not None:
                self.vnode_vcpus[best, host] += v
                self.peak_demand[best, host] += peak
                self.alloc_mem[host] += m / self.mem_ratios[best]
                self._placements[vm.vm_id] = (host, best, v, m)
                self._requests[vm.vm_id] = vm
                self._touch(host)
                return PlacementRecord(
                    vm.vm_id, host, float(self.ratios[best]), pooled=True
                )
        raise CapacityError(f"host {host} cannot take VM {vm.vm_id}")

    def remove(self, vm_id: str) -> None:
        try:
            host, li, v, m = self._placements.pop(vm_id)
        except KeyError:
            raise CapacityError(f"VM {vm_id} is not placed") from None
        vm = self._requests.pop(vm_id)
        peak = analytic_peak_demand(vm, self.params.safety)
        self.vnode_vcpus[li, host] -= v
        self.peak_demand[li, host] = max(0.0, self.peak_demand[li, host] - peak)
        if self.vnode_vcpus[li, host] == 0:
            self.peak_demand[li, host] = 0.0  # guard against float drift
        required = self._required_cpus(
            li, host, self.vnode_vcpus[li, host], self.peak_demand[li, host]
        )
        release = self.vnode_cpus[li, host] - required
        if release > 0:
            self.vnode_cpus[li, host] = required
            self.alloc_cpu[host] -= release
        self.alloc_mem[host] -= m / self.mem_ratios[li]
        if self.alloc_mem[host] < 1e-9:
            self.alloc_mem[host] = 0.0
        self._touch(host)


class DynamicLevelSimulation:
    """Drive a workload through a :class:`DynamicLevelCluster`.

    Mirrors :class:`~repro.simulator.vectorpool.VectorSimulation` and is
    compatible with the sizing search's ``simulation_factory`` hook.
    """

    def __init__(
        self,
        machines: Sequence[MachineSpec],
        config: SlackVMConfig | None = None,
        policy: str = "progress",
        fail_fast: bool = False,
        params: DynamicLevelParams | None = None,
    ):
        self.machines = list(machines)
        self.config = config or SlackVMConfig()
        self.policy = policy
        self.fail_fast = fail_fast
        self.params = params or DynamicLevelParams()

    def run(self, workload: list[VMRequest]) -> SimulationResult:
        cluster = DynamicLevelCluster(self.machines, self.config, self.params)
        queue = workload_events(list(workload))
        placements: dict[str, PlacementRecord] = {}
        rejections: list[str] = []
        timeline = Timeline()
        pooled = 0
        alive: set[str] = set()
        for event in queue.drain():
            vm = event.vm
            if event.kind is EventKind.ARRIVAL:
                feasible, _g, _o = cluster.feasibility(vm)
                if not feasible.any():
                    rejections.append(vm.vm_id)
                    if self.fail_fast:
                        break
                else:
                    scores = np.where(
                        feasible, cluster.scores(vm, self.policy), -np.inf
                    )
                    host = int(np.argmax(scores))
                    record = cluster.deploy(vm, host)
                    pooled += record.pooled
                    placements[vm.vm_id] = record
                    alive.add(vm.vm_id)
            else:
                if vm.vm_id in alive:
                    cluster.remove(vm.vm_id)
                    alive.discard(vm.vm_id)
            timeline.record(
                event.time,
                float(cluster.alloc_cpu.sum()),
                float(cluster.alloc_mem.sum()),
            )
        return SimulationResult(
            num_hosts=cluster.num_hosts,
            capacity_cpu=float(cluster.cap_cpu.sum()),
            capacity_mem=float(cluster.cap_mem.sum()),
            placements=placements,
            rejections=rejections,
            timeline=timeline,
            pooled_placements=pooled,
        )
