"""Peak-usage prediction for dynamic oversubscription (paper §VIII).

The paper's vNodes use *static* levels and point to dynamically
computed ones as future work, citing peak-prediction approaches: a
usage percentile (Resource Central [24]) or mean + k·std (Borg-style
[1]).  This module provides both estimators plus an *analytic* per-VM
peak derived from the workload model's usage profiles — the signal the
dynamic-level cluster uses when sizing vNodes by predicted demand
instead of the worst-case vCPU count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.core.types import VMRequest

__all__ = [
    "PercentilePredictor",
    "MeanStdPredictor",
    "analytic_peak_demand",
]


@dataclass(frozen=True)
class PercentilePredictor:
    """Predict peak usage as a high percentile of observed samples."""

    percentile: float = 99.0

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 100:
            raise ConfigError(f"percentile must be in (0,100], got {self.percentile}")

    def predict(self, samples: np.ndarray) -> float:
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise ConfigError("cannot predict from an empty sample window")
        return float(np.percentile(samples, self.percentile))


@dataclass(frozen=True)
class MeanStdPredictor:
    """Predict peak usage as mean + k standard deviations."""

    k: float = 3.0

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ConfigError(f"k must be >= 0, got {self.k}")

    def predict(self, samples: np.ndarray) -> float:
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise ConfigError("cannot predict from an empty sample window")
        return float(samples.mean() + self.k * samples.std())


#: Diurnal amplitude used by the interactive usage profile (must track
#: repro.workload.usage.InteractiveProfile's default).
_INTERACTIVE_AMPLITUDE = 0.5


def analytic_peak_demand(vm: VMRequest, safety: float = 1.1) -> float:
    """Upper bound on a VM's CPU demand, in physical cores.

    Derived from the closed-form peak of its usage profile (the same
    model :mod:`repro.perfmodel` drives), inflated by a ``safety``
    margin, and never exceeding the vCPU count.
    """
    if safety < 1.0:
        raise ConfigError(f"safety margin must be >= 1, got {safety}")
    if vm.usage_kind == "idle":
        peak_util = 0.05
    elif vm.usage_kind == "stress":
        peak_util = vm.usage_param
    elif vm.usage_kind == "interactive":
        peak_util = vm.usage_param * (1.0 + _INTERACTIVE_AMPLITUDE)
    else:
        peak_util = 1.0  # unknown behaviour: assume the worst
    return min(float(vm.spec.vcpus), peak_util * safety * vm.spec.vcpus)
