"""Peak-usage prediction for dynamic oversubscription (paper §VIII).

The paper's vNodes use *static* levels and point to dynamically
computed ones as future work, citing peak-prediction approaches: a
usage percentile (Resource Central [24]) or mean + k·std (Borg-style
[1]).  This module provides both estimators plus an *analytic* per-VM
peak derived from the workload model's usage profiles — the signal the
dynamic-level cluster uses when sizing vNodes by predicted demand
instead of the worst-case vCPU count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.core.types import VMRequest
from repro.workload.usage import INTERACTIVE_AMPLITUDE

__all__ = [
    "PercentilePredictor",
    "MeanStdPredictor",
    "analytic_peak_demand",
]


@dataclass(frozen=True)
class PercentilePredictor:
    """Predict peak usage as a high percentile of observed samples."""

    percentile: float = 99.0

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 100:
            raise ConfigError(f"percentile must be in (0,100], got {self.percentile}")

    def predict(self, samples: np.ndarray) -> float:
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise ConfigError("cannot predict from an empty sample window")
        # Recorded traces may have gaps (NaN samples); those must not
        # leak into placement scores.  Ignore them, but refuse a window
        # with no valid sample at all.
        if np.isnan(samples).any():
            if np.isnan(samples).all():
                raise ConfigError("cannot predict from an all-NaN sample window")
            return float(np.nanpercentile(samples, self.percentile))
        return float(np.percentile(samples, self.percentile))


@dataclass(frozen=True)
class MeanStdPredictor:
    """Predict peak usage as mean + k standard deviations."""

    k: float = 3.0

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ConfigError(f"k must be >= 0, got {self.k}")

    def predict(self, samples: np.ndarray) -> float:
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise ConfigError("cannot predict from an empty sample window")
        # Sample (ddof=1) rather than population std: the estimator
        # windows this predictor sees are small, and population std
        # systematically under-predicts the peak there.  A one-sample
        # window has no spread information — predict the sample itself.
        std = float(samples.std(ddof=1)) if samples.size > 1 else 0.0
        return float(samples.mean() + self.k * std)


def analytic_peak_demand(vm: VMRequest, safety: float = 1.1) -> float:
    """Upper bound on a VM's CPU demand, in physical cores.

    Derived from the closed-form peak of its usage profile (the same
    model :mod:`repro.perfmodel` drives), inflated by a ``safety``
    margin, and never exceeding the vCPU count.
    """
    if safety < 1.0:
        raise ConfigError(f"safety margin must be >= 1, got {safety}")
    if vm.usage_kind == "idle":
        peak_util = 0.05
    elif vm.usage_kind == "stress":
        peak_util = vm.usage_param
    elif vm.usage_kind == "interactive":
        # InteractiveProfile.demand clamps at full utilisation, so the
        # analytic peak must too — the unclamped closed form
        # overestimates whenever base > 1 / (1 + amplitude).
        peak_util = min(1.0, vm.usage_param * (1.0 + INTERACTIVE_AMPLITUDE))
    else:
        peak_util = 1.0  # unknown behaviour: assume the worst
    return min(float(vm.spec.vcpus), peak_util * safety * vm.spec.vcpus)
