"""Dynamic oversubscription levels (paper §VIII future work)."""

from repro.dynamiclevels.cluster import (
    DynamicLevelCluster,
    DynamicLevelParams,
    DynamicLevelSimulation,
)
from repro.dynamiclevels.predictor import (
    MeanStdPredictor,
    PercentilePredictor,
    analytic_peak_demand,
)

__all__ = [
    "DynamicLevelParams",
    "DynamicLevelCluster",
    "DynamicLevelSimulation",
    "PercentilePredictor",
    "MeanStdPredictor",
    "analytic_peak_demand",
]
