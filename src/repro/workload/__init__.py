"""Workload substrate: provider catalogs, level mixes, generator, traces."""

from repro.workload.azure_trace import assign_levels, load_azure_trace
from repro.workload.calibration import CalibrationTarget, calibrate_catalog
from repro.workload.catalog import AZURE, OVERSUB_MEM_CAP_GB, OVHCLOUD, PROVIDERS, Catalog
from repro.workload.distributions import DISTRIBUTIONS, enumerate_mixes, mix_shares
from repro.workload.generator import (
    WorkloadParams,
    generate_workload,
    peak_population,
    remap_levels,
)
from repro.workload.timeseries import (
    AZURE_LIKE_USAGE,
    MarkovUsageModel,
    TraceProfile,
    generate_usage_series,
)
from repro.workload.traces import load_trace, save_trace, iter_trace
from repro.workload.usage import (
    DEFAULT_BEHAVIOUR_SHARES,
    IdleProfile,
    InteractiveProfile,
    StressProfile,
    UsageProfile,
    profile_for,
)

__all__ = [
    "Catalog",
    "CalibrationTarget",
    "calibrate_catalog",
    "load_azure_trace",
    "assign_levels",
    "AZURE",
    "OVHCLOUD",
    "PROVIDERS",
    "OVERSUB_MEM_CAP_GB",
    "DISTRIBUTIONS",
    "enumerate_mixes",
    "mix_shares",
    "WorkloadParams",
    "generate_workload",
    "peak_population",
    "remap_levels",
    "save_trace",
    "load_trace",
    "iter_trace",
    "MarkovUsageModel",
    "TraceProfile",
    "generate_usage_series",
    "AZURE_LIKE_USAGE",
    "UsageProfile",
    "IdleProfile",
    "StressProfile",
    "InteractiveProfile",
    "profile_for",
    "DEFAULT_BEHAVIOUR_SHARES",
]
