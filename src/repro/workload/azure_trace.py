"""Import workloads from the public Azure trace schema.

Microsoft publishes VM packing/lifecycle traces (the Azure Public
Dataset family used by the paper's references [24][30]) as CSV with,
per VM: an identifier, a VM-type descriptor or explicit core/memory
sizing, and start/end times in fractional days.  This module converts
that schema into :class:`~repro.core.types.VMRequest` lists so the real
traces (which we cannot redistribute) can be replayed through every
experiment in this repository.

Expected CSV columns (header required, extra columns ignored):

* ``vmId`` — unique identifier;
* ``vmTypeId`` *or* the pair ``core``/``memory`` (vCPUs / GB);
* ``starttime`` — fractional days (may be negative for VMs alive at
  trace start: clamped to 0);
* ``endtime`` — fractional days, empty/missing for VMs outliving the
  trace.

Oversubscription levels are not part of the public schema; they are
assigned by the caller via a level mix (deterministic per seed), the
same way the paper extends CloudFactory.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import WorkloadError
from repro.core.types import OversubscriptionLevel, VMRequest, VMSpec
from repro.workload.distributions import LevelMix, mix_shares

__all__ = ["load_azure_trace", "assign_levels"]

DAY_SECONDS = 86_400.0


def _parse_time(value: str, row_no: int, field: str) -> float | None:
    value = value.strip()
    if not value or value.upper() in ("NULL", "NA", "NONE"):
        return None
    try:
        return float(value) * DAY_SECONDS
    except ValueError:
        raise WorkloadError(f"row {row_no}: invalid {field} {value!r}") from None


def load_azure_trace(
    path: str | Path,
    vm_types: Mapping[str, tuple[int, float]] | None = None,
    max_rows: int | None = None,
) -> list[VMRequest]:
    """Parse an Azure-schema CSV into VM requests (levels default 1:1).

    ``vm_types`` maps ``vmTypeId`` values to ``(vcpus, mem_gb)``; it is
    required when the CSV does not carry explicit ``core``/``memory``
    columns.
    """
    path = Path(path)
    out: list[VMRequest] = []
    with path.open(newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise WorkloadError(f"{path}: empty trace file")
        fields = {f.lower(): f for f in reader.fieldnames}
        if "vmid" not in fields:
            raise WorkloadError(f"{path}: missing 'vmId' column")
        has_sizes = "core" in fields and "memory" in fields
        if not has_sizes and "vmtypeid" not in fields:
            raise WorkloadError(
                f"{path}: need either core/memory columns or vmTypeId"
            )
        if not has_sizes and vm_types is None:
            raise WorkloadError(
                "this trace uses vmTypeId; pass vm_types={typeId: (vcpus, mem_gb)}"
            )
        for row_no, row in enumerate(reader, 2):
            if max_rows is not None and len(out) >= max_rows:
                break
            vm_id = row[fields["vmid"]].strip()
            if not vm_id:
                raise WorkloadError(f"row {row_no}: empty vmId")
            if has_sizes:
                try:
                    vcpus = int(float(row[fields["core"]]))
                    mem = float(row[fields["memory"]])
                except (ValueError, TypeError):
                    raise WorkloadError(
                        f"row {row_no}: invalid core/memory sizing"
                    ) from None
            else:
                type_id = row[fields["vmtypeid"]].strip()
                try:
                    vcpus, mem = vm_types[type_id]  # type: ignore[index]
                except KeyError:
                    raise WorkloadError(
                        f"row {row_no}: unknown vmTypeId {type_id!r}"
                    ) from None
            start = _parse_time(row.get(fields.get("starttime", ""), "0"),
                                row_no, "starttime")
            end = (
                _parse_time(row[fields["endtime"]], row_no, "endtime")
                if "endtime" in fields
                else None
            )
            arrival = max(0.0, start if start is not None else 0.0)
            if end is not None and end <= arrival:
                # VM entirely before trace start, or zero-length: skip.
                continue
            out.append(
                VMRequest(
                    vm_id=f"az-{vm_id}",
                    spec=VMSpec(vcpus=vcpus, mem_gb=mem),
                    level=OversubscriptionLevel(1.0),
                    arrival=arrival,
                    departure=end,
                )
            )
    if not out:
        raise WorkloadError(f"{path}: no usable VM rows")
    return out


def assign_levels(
    workload: Sequence[VMRequest],
    mix: LevelMix | str,
    seed: int = 0,
    oversub_mem_cap: float | None = 8.0,
) -> list[VMRequest]:
    """Assign oversubscription levels to an imported trace.

    Levels are drawn per VM from the mix; VMs above ``oversub_mem_cap``
    stay premium regardless of the draw (the §III-A catalog hypothesis:
    large-memory flavors are not offered oversubscribed).
    """
    shares = mix_shares(mix)
    ratios = np.array(sorted(shares))
    probs = np.array([shares[r] for r in ratios])
    rng = np.random.default_rng(seed)
    draws = ratios[rng.choice(len(ratios), size=len(workload), p=probs)]
    out = []
    for vm, ratio in zip(workload, draws):
        if (
            oversub_mem_cap is not None
            and ratio > 1.0
            and vm.spec.mem_gb > oversub_mem_cap
        ):
            ratio = 1.0
        out.append(vm.with_level(OversubscriptionLevel(float(ratio))))
    return out
