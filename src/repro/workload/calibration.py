"""Catalog calibration: fit flavor probabilities to published statistics.

The frozen :data:`~repro.workload.catalog.AZURE` and
:data:`~repro.workload.catalog.OVHCLOUD` catalogs were derived with
this module: given a set of candidate flavors, a prior over them, and
the provider statistics the paper publishes (Table I means and the
Table II restricted M/C ratio), find the minimum-KL-divergence
probability vector satisfying the moment constraints.  Providers
adopting this library can calibrate catalogs to their own fleet
statistics the same way.

Requires scipy (an optional dependency; everything else in the library
runs on numpy alone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import WorkloadError
from repro.core.types import VMSpec
from repro.workload.catalog import OVERSUB_MEM_CAP_GB, Catalog

__all__ = ["CalibrationTarget", "calibrate_catalog"]


@dataclass(frozen=True)
class CalibrationTarget:
    """The statistics a calibrated catalog must reproduce."""

    #: Table I: mean vCPUs per VM over the full catalog.
    mean_vcpus: float
    #: Table I: mean memory (GB) per VM over the full catalog.
    mean_mem_gb: float
    #: Table II (divided by the oversubscription ratio): mean GB per
    #: vCPU over the oversubscription-eligible subset.  None skips the
    #: restricted-moment constraint.
    restricted_mem_per_vcpu: float | None = None
    #: Memory cap defining the oversubscription-eligible subset.
    oversub_mem_cap: float = OVERSUB_MEM_CAP_GB

    def __post_init__(self) -> None:
        if self.mean_vcpus <= 0 or self.mean_mem_gb <= 0:
            raise WorkloadError("target means must be positive")
        if (
            self.restricted_mem_per_vcpu is not None
            and self.restricted_mem_per_vcpu <= 0
        ):
            raise WorkloadError("restricted ratio must be positive")


def calibrate_catalog(
    name: str,
    flavors: Sequence[VMSpec],
    target: CalibrationTarget,
    prior: Sequence[float] | None = None,
    tol: float = 1e-6,
) -> Catalog:
    """Fit flavor probabilities to ``target`` by min-KL projection.

    Solves ``min_p KL(p || prior)`` subject to the linear moment
    constraints, via SLSQP.  Raises :class:`WorkloadError` when the
    constraints are infeasible for the given flavor set (e.g. every
    eligible flavor has a higher memory/vCPU ratio than the target —
    the failure mode that forces adding leaner flavors).
    """
    try:
        from scipy.optimize import minimize
    except ImportError as exc:  # pragma: no cover - env-specific
        raise WorkloadError(
            "catalog calibration requires scipy (optional dependency)"
        ) from exc

    flavors = list(flavors)
    if len(flavors) < 3:
        raise WorkloadError("need at least 3 candidate flavors")
    if len(set(flavors)) != len(flavors):
        raise WorkloadError("duplicate candidate flavors")
    n = len(flavors)
    v = np.array([f.vcpus for f in flavors], dtype=float)
    m = np.array([f.mem_gb for f in flavors], dtype=float)
    small = m <= target.oversub_mem_cap

    if prior is None:
        prior_arr = np.full(n, 1.0 / n)
    else:
        prior_arr = np.asarray(prior, dtype=float)
        if prior_arr.shape != (n,) or np.any(prior_arr <= 0):
            raise WorkloadError("prior must be positive with one entry per flavor")
        prior_arr = prior_arr / prior_arr.sum()

    rows = [np.ones(n), v, m]
    rhs = [1.0, target.mean_vcpus, target.mean_mem_gb]
    if target.restricted_mem_per_vcpu is not None:
        if not small.any():
            raise WorkloadError(
                "no flavor fits under the oversubscription memory cap"
            )
        r = target.restricted_mem_per_vcpu
        ratios = m[small] / v[small]
        if r < ratios.min() - 1e-12 or r > ratios.max() + 1e-12:
            raise WorkloadError(
                f"restricted ratio {r:g} is outside the eligible flavors' "
                f"range [{ratios.min():g}, {ratios.max():g}]"
            )
        rows.append(np.where(small, m - r * v, 0.0))
        rhs.append(0.0)
    A = np.vstack(rows)
    b = np.array(rhs)

    def objective(p: np.ndarray) -> float:
        p = np.clip(p, 1e-12, None)
        return float(np.sum(p * np.log(p / prior_arr)))

    constraints = [
        {"type": "eq", "fun": (lambda p, Ai=A[i], bi=b[i]: float(Ai @ p - bi))}
        for i in range(len(b))
    ]
    res = minimize(
        objective,
        prior_arr,
        constraints=constraints,
        bounds=[(1e-9, 1.0)] * n,
        method="SLSQP",
        options={"maxiter": 5000, "ftol": 1e-14},
    )
    p = np.clip(res.x, 0.0, None)
    residual = float(np.abs(A @ p - b).max())
    if not res.success or residual > tol:
        raise WorkloadError(
            f"calibration failed (residual {residual:.2e}): the targets may "
            "be infeasible for this flavor set"
        )
    p = p / p.sum()
    return Catalog(name=name, entries=tuple(zip(flavors, (float(x) for x in p))))
