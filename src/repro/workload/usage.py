"""Per-VM CPU usage profiles (CloudFactory-style behaviour classes).

The physical experiment (§VII-A1) mixes three behaviours: 10 % idle
VMs, 60 % running a CPU benchmark (stress-ng), and 30 % interactive
micro-service applications probed for response time.  A profile maps
simulation time to the fraction of the VM's vCPUs it wants to run —
the demand signal consumed by :mod:`repro.perfmodel`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.errors import WorkloadError

__all__ = [
    "UsageProfile",
    "IdleProfile",
    "StressProfile",
    "InteractiveProfile",
    "profile_for",
    "DEFAULT_BEHAVIOUR_SHARES",
    "INTERACTIVE_AMPLITUDE",
]

#: §VII-A1 behaviour mix: (idle, stress, interactive).
DEFAULT_BEHAVIOUR_SHARES: dict[str, float] = {
    "idle": 0.10,
    "stress": 0.60,
    "interactive": 0.30,
}

DAY_SECONDS = 86_400.0

#: Default diurnal amplitude of :class:`InteractiveProfile`.  Consumers
#: that reason about interactive peaks analytically (e.g.
#: :func:`repro.dynamiclevels.predictor.analytic_peak_demand`) must
#: import this constant instead of copying the value.
INTERACTIVE_AMPLITUDE = 0.5


class UsageProfile(ABC):
    """Maps time to demanded vCPU fraction in [0, 1]."""

    @abstractmethod
    def demand(self, t: float) -> float:
        """Fraction of the VM's vCPUs demanded at time ``t``."""

    def demand_series(self, times: np.ndarray) -> np.ndarray:
        """Demand at every instant in ``times``.

        The base implementation loops over :meth:`demand`; the concrete
        profiles override it with a vectorized equivalent (bit-identical
        to the scalar path) because the oversubscription estimators
        evaluate it once per host per observation window.
        """
        return np.array([self.demand(float(t)) for t in np.asarray(times)])


@dataclass(frozen=True)
class IdleProfile(UsageProfile):
    """A nearly-idle VM (background OS noise only)."""

    floor: float = 0.02

    def demand(self, t: float) -> float:
        return self.floor

    def demand_series(self, times: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(times).shape, self.floor)


@dataclass(frozen=True)
class StressProfile(UsageProfile):
    """stress-ng-like constant CPU load at a fixed utilisation."""

    utilization: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization <= 1.0:
            raise WorkloadError(f"utilization must be in [0,1], got {self.utilization}")

    def demand(self, t: float) -> float:
        return self.utilization

    def demand_series(self, times: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(times).shape, self.utilization)


@dataclass(frozen=True)
class InteractiveProfile(UsageProfile):
    """Interactive service with a diurnal load pattern.

    ``base`` is the mean utilisation; the demand oscillates daily with
    relative ``amplitude`` and a per-VM ``phase`` (users in different
    timezones), never exceeding 1.
    """

    base: float = 0.35
    amplitude: float = INTERACTIVE_AMPLITUDE
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.base <= 1.0:
            raise WorkloadError(f"base must be in (0,1], got {self.base}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise WorkloadError(f"amplitude must be in [0,1], got {self.amplitude}")

    def demand(self, t: float) -> float:
        wave = 1.0 + self.amplitude * math.sin(2 * math.pi * (t / DAY_SECONDS + self.phase))
        return min(1.0, self.base * wave)

    def demand_series(self, times: np.ndarray) -> np.ndarray:
        # Same IEEE operations (and order) as the scalar path, so the
        # two are bit-identical; math.pi == np.pi.
        t = np.asarray(times, dtype=float)
        wave = 1.0 + self.amplitude * np.sin(2 * math.pi * (t / DAY_SECONDS + self.phase))
        return np.minimum(1.0, self.base * wave)


def profile_for(kind: str, param: float, phase: float = 0.0) -> UsageProfile:
    """Instantiate the profile matching a trace's ``usage_kind`` tag."""
    if kind == "idle":
        return IdleProfile()
    if kind == "stress":
        return StressProfile(utilization=param)
    if kind == "interactive":
        return InteractiveProfile(base=param, phase=phase)
    raise WorkloadError(f"unknown usage kind {kind!r}")
