"""Workload trace (de)serialization.

Traces are stored as JSON Lines — one VM lifecycle per line — so large
workloads stream without loading everything twice, and generated
workloads can be shared between the examples, benches and external
tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Sequence

from repro.core.errors import WorkloadError
from repro.core.types import OversubscriptionLevel, VMRequest, VMSpec

__all__ = ["vm_to_dict", "vm_from_dict", "save_trace", "load_trace", "iter_trace"]

_REQUIRED = {"vm_id", "vcpus", "mem_gb", "ratio", "arrival"}


def vm_to_dict(vm: VMRequest) -> dict:
    return {
        "vm_id": vm.vm_id,
        "vcpus": vm.spec.vcpus,
        "mem_gb": vm.spec.mem_gb,
        "ratio": vm.level.ratio,
        "arrival": vm.arrival,
        "departure": vm.departure,
        "usage_kind": vm.usage_kind,
        "usage_param": vm.usage_param,
    }


def vm_from_dict(row: dict) -> VMRequest:
    missing = _REQUIRED - row.keys()
    if missing:
        raise WorkloadError(f"trace row missing fields {sorted(missing)}: {row}")
    return VMRequest(
        vm_id=str(row["vm_id"]),
        spec=VMSpec(vcpus=int(row["vcpus"]), mem_gb=float(row["mem_gb"])),
        level=OversubscriptionLevel(float(row["ratio"])),
        arrival=float(row["arrival"]),
        departure=None if row.get("departure") is None else float(row["departure"]),
        usage_kind=str(row.get("usage_kind", "stress")),
        usage_param=float(row.get("usage_param", 0.5)),
    )


def save_trace(workload: Sequence[VMRequest], path: str | Path) -> None:
    """Write a trace as JSON Lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for vm in workload:
            fh.write(json.dumps(vm_to_dict(vm)) + "\n")


def iter_trace(path: str | Path) -> Iterator[VMRequest]:
    """Stream VM requests from a JSON Lines trace."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            yield vm_from_dict(row)


def load_trace(path: str | Path) -> list[VMRequest]:
    return list(iter_trace(path))
