"""Provider VM-flavor catalogs (paper §III-A, Tables I & II).

The paper derives its analysis from the VM-size distributions of
Microsoft Azure and OVHcloud published with CloudFactory [30].  Those
raw distributions are not redistributable, so this module freezes
synthetic catalogs whose *moments match the published statistics
exactly*:

* Table I — mean request per VM: Azure 2.25 vCPU / 4.8 GB,
  OVHcloud 3.24 vCPU / 10.05 GB;
* Table II — M/C ratio of the oversubscribed-eligible subset
  (flavors with at most 8 GB, the paper's catalog-restriction
  hypothesis): Azure 1.5 GB/vCPU (→ 3.0 at 2:1, 4.5 at 3:1),
  OVHcloud 29/15 GB/vCPU (→ 3.9 at 2:1, 5.8 at 3:1).

Probabilities were obtained offline by minimum-KL projection of a
plausible flavor prior onto those moment constraints (power-of-two
sizes, 1-vCPU flavors most common); the tests in
``tests/workload/test_catalog.py`` re-verify every published moment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import WorkloadError
from repro.core.types import VMSpec

__all__ = ["Catalog", "AZURE", "OVHCLOUD", "PROVIDERS", "OVERSUB_MEM_CAP_GB"]

#: §III-A: providers do not offer oversubscribed VMs above 8 GB
#: ("OVHcloud does not offer oversubscribed VMs with a capacity
#: exceeding 8 GB") — the same cap is applied to both catalogs.
OVERSUB_MEM_CAP_GB = 8.0


@dataclass(frozen=True)
class Catalog:
    """A discrete distribution over VM flavors for one provider."""

    name: str
    entries: tuple[tuple[VMSpec, float], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise WorkloadError("catalog cannot be empty")
        total = sum(p for _, p in self.entries)
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(f"catalog {self.name} probabilities sum to {total}")
        if any(p < 0 for _, p in self.entries):
            raise WorkloadError(f"catalog {self.name} has negative probabilities")
        specs = [s for s, _ in self.entries]
        if len(set(specs)) != len(specs):
            raise WorkloadError(f"catalog {self.name} has duplicate flavors")

    # -- moments -----------------------------------------------------------

    @property
    def specs(self) -> tuple[VMSpec, ...]:
        return tuple(s for s, _ in self.entries)

    @property
    def probabilities(self) -> np.ndarray:
        return np.array([p for _, p in self.entries])

    @property
    def mean_vcpus(self) -> float:
        """Average vCPU request per VM (Table I)."""
        return float(sum(s.vcpus * p for s, p in self.entries))

    @property
    def mean_mem_gb(self) -> float:
        """Average vRAM request per VM (Table I)."""
        return float(sum(s.mem_gb * p for s, p in self.entries))

    def mc_ratio(self, oversubscription_ratio: float = 1.0) -> float:
        """Provisioned M/C ratio at a CPU oversubscription level (Table II).

        At ``n:1``, each physical core carries ``n`` vCPUs, so the
        memory-per-physical-core of the hosted mix is ``n`` times the
        memory-per-vCPU.  Oversubscribed levels (n > 1) draw from the
        catalog restricted to flavors of at most
        :data:`OVERSUB_MEM_CAP_GB`.
        """
        cat = self if oversubscription_ratio <= 1 else self.restricted()
        return oversubscription_ratio * cat.mean_mem_gb / cat.mean_vcpus

    def restricted(self, max_mem_gb: float = OVERSUB_MEM_CAP_GB) -> "Catalog":
        """Sub-catalog of oversubscription-eligible flavors, renormalized."""
        kept = [(s, p) for s, p in self.entries if s.mem_gb <= max_mem_gb]
        if not kept:
            raise WorkloadError(
                f"no flavor of {self.name} fits under {max_mem_gb} GB"
            )
        total = sum(p for _, p in kept)
        return Catalog(
            name=f"{self.name}<= {max_mem_gb:g}GB",
            entries=tuple((s, p / total) for s, p in kept),
        )

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw flavor(s) from the catalog distribution."""
        idx = rng.choice(len(self.entries), size=size, p=self.probabilities)
        if size is None:
            return self.entries[int(idx)][0]
        return [self.entries[i][0] for i in np.asarray(idx)]


def _cat(name: str, rows: list[tuple[int, float, float]]) -> Catalog:
    entries = tuple((VMSpec(v, m), p) for v, m, p in rows)
    # Normalize residual rounding so the catalog invariant holds exactly.
    total = sum(p for _, p in entries)
    return Catalog(name=name, entries=tuple((s, p / total) for s, p in entries))


#: Azure-like catalog (Table I: 2.25 vCPU / 4.8 GB per VM).
AZURE = _cat(
    "azure",
    [
        (1, 1.0, 0.194726),
        (1, 2.0, 0.261391),
        (1, 4.0, 0.058875),
        (2, 2.0, 0.138999),
        (2, 4.0, 0.117405),
        (2, 8.0, 0.007942),
        (4, 4.0, 0.069165),
        (4, 8.0, 0.022457),
        (4, 16.0, 0.060470),
        (8, 8.0, 0.026305),
        (8, 16.0, 0.009279),
        (8, 32.0, 0.026809),
        (16, 64.0, 0.006175),
    ],
)

#: OVHcloud-like catalog (Table I: 3.24 vCPU / 10.05 GB per VM).
OVHCLOUD = _cat(
    "ovhcloud",
    [
        (1, 2.0, 0.214665),
        (2, 2.0, 0.090062),
        (2, 4.0, 0.188709),
        (2, 8.0, 0.072818),
        (4, 4.0, 0.049824),
        (4, 8.0, 0.051270),
        (4, 16.0, 0.221801),
        (8, 16.0, 0.011088),
        (8, 32.0, 0.083258),
        (16, 64.0, 0.015771),
        (32, 128.0, 0.000733),
    ],
)

PROVIDERS: dict[str, Catalog] = {"azure": AZURE, "ovhcloud": OVHCLOUD}
