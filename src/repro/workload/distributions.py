"""Oversubscription-level mixes A–O (paper Figures 3 & 4).

The evaluation sweeps every mix of (1:1, 2:1, 3:1) shares in 25 %
steps — 15 distributions labelled A through O, ordered from least to
most oversubscribed.  The ordering is pinned by the paper's own
statements: A is 100 % 1:1, O is 100 % 3:1, F is 50 % 1:1 + 50 % 3:1,
and A, B, D, G, K are exactly the mixes with no 3:1 VMs.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.errors import WorkloadError

__all__ = ["LevelMix", "DISTRIBUTIONS", "mix_shares", "enumerate_mixes"]

#: Shares of (1:1, 2:1, 3:1) per named distribution, in percent.
LevelMix = tuple[float, float, float]

DISTRIBUTIONS: dict[str, LevelMix] = {
    "A": (100, 0, 0),
    "B": (75, 25, 0),
    "C": (75, 0, 25),
    "D": (50, 50, 0),
    "E": (50, 25, 25),
    "F": (50, 0, 50),
    "G": (25, 75, 0),
    "H": (25, 50, 25),
    "I": (25, 25, 50),
    "J": (25, 0, 75),
    "K": (0, 100, 0),
    "L": (0, 75, 25),
    "M": (0, 50, 50),
    "N": (0, 25, 75),
    "O": (0, 0, 100),
}


def mix_shares(mix: LevelMix | str) -> Mapping[float, float]:
    """Normalize a mix (name or percent triple) to {ratio: share} fractions."""
    if isinstance(mix, str):
        try:
            mix = DISTRIBUTIONS[mix.upper()]
        except KeyError:
            raise WorkloadError(
                f"unknown distribution {mix!r}; expected one of {sorted(DISTRIBUTIONS)}"
            ) from None
    s1, s2, s3 = mix
    total = s1 + s2 + s3
    if total <= 0:
        raise WorkloadError("level shares must sum to a positive value")
    if min(s1, s2, s3) < 0:
        raise WorkloadError("level shares must be non-negative")
    return {1.0: s1 / total, 2.0: s2 / total, 3.0: s3 / total}


def enumerate_mixes(step: int = 25) -> dict[str, LevelMix]:
    """Enumerate all percent mixes at ``step`` granularity, in the paper's
    order (decreasing 1:1 share, then decreasing 2:1 share), labelled
    alphabetically.  ``step=25`` reproduces exactly A–O."""
    if step <= 0 or 100 % step:
        raise WorkloadError(f"step must divide 100, got {step}")
    mixes: list[LevelMix] = []
    for s1 in range(100, -1, -step):
        for s2 in range(100 - s1, -1, -step):
            mixes.append((float(s1), float(s2), float(100 - s1 - s2)))
    labels = [chr(ord("A") + i) if i < 26 else f"Z{i - 25}" for i in range(len(mixes))]
    return dict(zip(labels, mixes))
