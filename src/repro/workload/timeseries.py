"""Markov-modulated CPU-usage time series (CloudFactory's usage model).

CloudFactory [30] reproduces per-VM CPU behaviour from provider traces:
VMs alternate between load regimes rather than holding a constant
utilisation.  This module provides that richer signal:

* :class:`MarkovUsageModel` — a small continuous-time Markov chain over
  load states (e.g. low/medium/high), with per-state utilisation bands;
* :func:`generate_usage_series` — sample a VM's utilisation trace on a
  fixed grid;
* :class:`TraceProfile` — adapts a sampled series to the
  :class:`~repro.workload.usage.UsageProfile` interface, so the
  performance model can be driven by synthetic *or* recorded traces
  (step-function interpolation, like most monitoring exports).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import WorkloadError
from repro.workload.usage import UsageProfile

__all__ = ["MarkovUsageModel", "TraceProfile", "generate_usage_series", "AZURE_LIKE_USAGE"]


@dataclass(frozen=True)
class MarkovUsageModel:
    """A continuous-time Markov chain over utilisation regimes.

    ``levels`` are per-state mean utilisations; ``dwell`` the mean time
    spent in each state (seconds); transitions pick a *different* state
    uniformly (detailed structure matters less than the regime mixture
    for packing/latency studies).
    """

    levels: tuple[float, ...] = (0.05, 0.25, 0.70)
    dwell: tuple[float, ...] = (1800.0, 900.0, 300.0)
    jitter: float = 0.05  # uniform noise around the state level

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise WorkloadError("need at least two load states")
        if len(self.levels) != len(self.dwell):
            raise WorkloadError("levels and dwell must have the same length")
        if any(not 0.0 <= u <= 1.0 for u in self.levels):
            raise WorkloadError("state levels must be in [0,1]")
        if any(d <= 0 for d in self.dwell):
            raise WorkloadError("dwell times must be positive")
        if not 0.0 <= self.jitter <= 0.5:
            raise WorkloadError("jitter must be in [0, 0.5]")

    @property
    def num_states(self) -> int:
        return len(self.levels)

    def stationary_mean(self) -> float:
        """Long-run mean utilisation (dwell-weighted state levels)."""
        dwell = np.asarray(self.dwell)
        weights = dwell / dwell.sum()
        return float(np.dot(weights, self.levels))


#: Regime mixture loosely shaped on Azure's published usage statistics:
#: most of the time near-idle, occasional sustained bursts.
AZURE_LIKE_USAGE = MarkovUsageModel(
    levels=(0.04, 0.20, 0.60), dwell=(2400.0, 1200.0, 400.0), jitter=0.04
)


def generate_usage_series(
    model: MarkovUsageModel,
    duration: float,
    dt: float,
    rng: np.random.Generator,
    initial_state: int | None = None,
) -> np.ndarray:
    """Sample one VM's utilisation on a grid of ``dt``-spaced points."""
    if duration <= 0 or dt <= 0:
        raise WorkloadError("duration and dt must be positive")
    n = int(np.ceil(duration / dt))
    out = np.empty(n)
    dwell = np.asarray(model.dwell)
    if initial_state is None:
        # Start from the stationary regime distribution.
        p = dwell / dwell.sum()
        state = int(rng.choice(model.num_states, p=p))
    else:
        if not 0 <= initial_state < model.num_states:
            raise WorkloadError(f"initial_state {initial_state} out of range")
        state = initial_state
    remaining = rng.exponential(dwell[state])
    for i in range(n):
        base = model.levels[state]
        noise = rng.uniform(-model.jitter, model.jitter)
        out[i] = min(1.0, max(0.0, base + noise))
        remaining -= dt
        while remaining <= 0:
            others = [s for s in range(model.num_states) if s != state]
            state = int(rng.choice(others))
            remaining += rng.exponential(dwell[state])
    return out


@dataclass(frozen=True)
class TraceProfile(UsageProfile):
    """A usage profile backed by a sampled series (step interpolation).

    Accepts any recorded monitoring export: ``series[i]`` holds for
    ``[start + i*dt, start + (i+1)*dt)``; queries outside the recorded
    window clamp to the first/last sample.
    """

    series: tuple[float, ...]
    dt: float
    start: float = 0.0

    def __post_init__(self) -> None:
        if not self.series:
            raise WorkloadError("a trace profile needs at least one sample")
        if self.dt <= 0:
            raise WorkloadError("dt must be positive")
        if any(not 0.0 <= u <= 1.0 for u in self.series):
            raise WorkloadError("utilisation samples must be in [0,1]")

    @classmethod
    def from_model(
        cls,
        model: MarkovUsageModel,
        duration: float,
        dt: float,
        rng: np.random.Generator,
    ) -> "TraceProfile":
        series = generate_usage_series(model, duration, dt, rng)
        return cls(series=tuple(series), dt=dt)

    def demand(self, t: float) -> float:
        idx = int((t - self.start) // self.dt)
        idx = min(max(idx, 0), len(self.series) - 1)
        return self.series[idx]

    def demand_series(self, times: np.ndarray) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        idx = ((t - self.start) // self.dt).astype(np.intp)
        np.clip(idx, 0, len(self.series) - 1, out=idx)
        return np.asarray(self.series, dtype=float)[idx]
