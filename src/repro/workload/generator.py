"""CloudFactory-style workload generation (paper §VII).

Generates a dynamic set of VM lifecycles matching a Cloud-provider
context: flavor sizes drawn from a provider catalog, a configurable
share of VMs per oversubscription level (the paper's extension to
CloudFactory), Poisson arrivals with optional diurnal modulation, and
heavy-tailed lifetimes.  Oversubscribed VMs draw from the catalog
restricted to flavors of at most 8 GB (§III-A hypothesis).

All randomness flows through a seeded :class:`numpy.random.Generator`,
so every experiment in the benches is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import WorkloadError
from repro.core.types import OversubscriptionLevel, VMRequest
from repro.workload.catalog import OVERSUB_MEM_CAP_GB, Catalog
from repro.workload.distributions import LevelMix, mix_shares
from repro.workload.usage import DEFAULT_BEHAVIOUR_SHARES

__all__ = ["WorkloadParams", "generate_workload", "peak_population", "remap_levels"]

DAY = 86_400.0
WEEK = 7 * DAY


@dataclass(frozen=True)
class WorkloadParams:
    """Parameters of one generated trace.

    ``target_population`` is the steady-state concurrent VM count
    (paper §VII-B1 targets 500); the Poisson arrival rate is derived as
    ``target_population / mean_lifetime`` (Little's law).
    """

    catalog: Catalog
    level_mix: LevelMix | str = (100.0, 0.0, 0.0)
    target_population: int = 500
    duration: float = WEEK
    mean_lifetime: float = 2 * DAY
    diurnal_amplitude: float = 0.25
    behaviour_shares: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BEHAVIOUR_SHARES)
    )
    oversub_mem_cap: float = OVERSUB_MEM_CAP_GB
    #: Accepts a plain int or a :class:`numpy.random.SeedSequence` (e.g.
    #: one spawned by the sweep runner); both feed ``default_rng``
    #: directly, so a trace is a pure function of ``(params, seed)``.
    seed: int | np.random.SeedSequence = 0

    def __post_init__(self) -> None:
        if self.target_population <= 0:
            raise WorkloadError("target_population must be positive")
        if self.duration <= 0 or self.mean_lifetime <= 0:
            raise WorkloadError("duration and mean_lifetime must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise WorkloadError("diurnal_amplitude must be in [0,1)")
        total = sum(self.behaviour_shares.values())
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"behaviour shares sum to {total}, expected 1")


def _arrival_times(params: WorkloadParams, rng: np.random.Generator) -> np.ndarray:
    """Non-homogeneous Poisson arrivals by thinning a homogeneous stream."""
    rate = params.target_population / params.mean_lifetime
    peak_rate = rate * (1.0 + params.diurnal_amplitude)
    # Candidate homogeneous stream at the envelope rate.
    expected = peak_rate * params.duration
    n_cand = rng.poisson(expected)
    times = np.sort(rng.uniform(0.0, params.duration, size=n_cand))
    if params.diurnal_amplitude == 0.0:
        return times
    intensity = rate * (
        1.0 + params.diurnal_amplitude * np.sin(2 * np.pi * times / DAY)
    )
    keep = rng.uniform(0.0, peak_rate, size=n_cand) < intensity
    return times[keep]


def _sample_levels(
    shares: Mapping[float, float], n: int, rng: np.random.Generator
) -> np.ndarray:
    ratios = np.array(sorted(shares))
    probs = np.array([shares[r] for r in ratios])
    return ratios[rng.choice(len(ratios), size=n, p=probs)]


def _sample_behaviours(
    shares: Mapping[str, float], n: int, rng: np.random.Generator
) -> list[str]:
    kinds = sorted(shares)
    probs = np.array([shares[k] for k in kinds])
    idx = rng.choice(len(kinds), size=n, p=probs)
    return [kinds[i] for i in idx]


def generate_workload(params: WorkloadParams) -> list[VMRequest]:
    """Generate one reproducible VM lifecycle trace."""
    rng = np.random.default_rng(params.seed)
    shares = mix_shares(params.level_mix)
    active_shares = {r: s for r, s in shares.items() if s > 0}
    arrivals = _arrival_times(params, rng)
    n = len(arrivals)
    if n == 0:
        raise WorkloadError("generated zero arrivals; increase duration or population")
    levels = _sample_levels(active_shares, n, rng)
    lifetimes = rng.exponential(params.mean_lifetime, size=n)
    behaviours = _sample_behaviours(params.behaviour_shares, n, rng)
    restricted = params.catalog.restricted(params.oversub_mem_cap)
    requests: list[VMRequest] = []
    for i in range(n):
        ratio = float(levels[i])
        cat = params.catalog if ratio <= 1.0 else restricted
        spec = cat.sample(rng)
        kind = behaviours[i]
        if kind == "idle":
            param = 0.0
        elif kind == "stress":
            # CloudFactory-like skewed utilisation: most VMs are light.
            param = float(np.clip(rng.beta(2.0, 3.0), 0.02, 1.0))
        else:
            param = float(np.clip(rng.beta(2.5, 4.0), 0.05, 0.9))
        departure = arrivals[i] + lifetimes[i]
        requests.append(
            VMRequest(
                vm_id=f"vm-{i:05d}",
                spec=spec,
                level=OversubscriptionLevel(ratio),
                arrival=float(arrivals[i]),
                departure=float(departure) if departure < params.duration else None,
                usage_kind=kind,
                usage_param=param,
            )
        )
    return requests


def remap_levels(
    workload: Sequence[VMRequest],
    levels: Sequence[OversubscriptionLevel],
) -> list[VMRequest]:
    """Replace each VM's level with the matching configured level.

    Matching is by CPU ratio; used to apply provider-side attributes
    such as memory oversubscription (a level's ``mem_ratio``) onto a
    trace generated with plain CPU-only levels.
    """
    by_ratio = {lv.ratio: lv for lv in levels}
    out = []
    for vm in workload:
        try:
            out.append(vm.with_level(by_ratio[vm.level.ratio]))
        except KeyError:
            raise WorkloadError(
                f"trace VM {vm.vm_id} uses level {vm.level.name} with no "
                f"configured counterpart"
            ) from None
    return out


def peak_population(workload: Sequence[VMRequest], horizon: float | None = None) -> int:
    """Maximum number of concurrently-alive VMs in a trace."""
    deltas: list[tuple[float, int]] = []
    for vm in workload:
        deltas.append((vm.arrival, 1))
        if vm.departure is not None:
            deltas.append((vm.departure, -1))
        elif horizon is not None:
            deltas.append((horizon, -1))
    deltas.sort(key=lambda d: (d[0], d[1]))
    alive = peak = 0
    for _, d in deltas:
        alive += d
        peak = max(peak, alive)
    return peak
