"""Observability layer: metrics, decision records, differential audit.

Production schedulers are only debuggable through their telemetry
(per-decision traces + fleet metrics); this package provides both for
the repro's two engines, plus the differential audit tool that turns
the engine-equivalence guarantee into a divergence *localizer*.

* :mod:`repro.obs.metrics` — counters/gauges/histograms/timers behind a
  registry with a zero-cost no-op mode and JSON/CSV export;
* :mod:`repro.obs.records` — structured per-placement decision records
  and the recorder protocol both engines emit through;
* :mod:`repro.obs.audit` — replay one workload through both engines and
  report the first divergence with full candidate/score context.
"""

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    Timer,
)
from repro.obs.records import (
    ADMISSION_GROWTH,
    ADMISSION_POOLED,
    ADMISSION_REJECTED,
    NULL_RECORDER,
    AdmissionRecord,
    DecisionRecord,
    DecisionRecorder,
    HostDecision,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "ADMISSION_GROWTH",
    "ADMISSION_POOLED",
    "ADMISSION_REJECTED",
    "HostDecision",
    "DecisionRecord",
    "AdmissionRecord",
    "DecisionRecorder",
    "NullRecorder",
    "MemoryRecorder",
    "JsonlRecorder",
    "NULL_RECORDER",
    "AuditReport",
    "Divergence",
    "audit_workload",
    "diff_decision_streams",
]

# The audit tool sits *above* the engines (it runs them), while the
# records/metrics modules sit below (the engines import them).  Loading
# repro.obs.audit eagerly here would therefore close an import cycle
# (engines -> repro.obs.records -> this package -> audit -> engines),
# so its names are resolved lazily on first attribute access.
_AUDIT_EXPORTS = {"AuditReport", "Divergence", "audit_workload", "diff_decision_streams"}


def __getattr__(name: str):
    if name in _AUDIT_EXPORTS:
        from repro.obs import audit as _audit

        return getattr(_audit, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
