"""Lightweight metrics registry for the scheduling/simulation paths.

Production schedulers are debugged through their telemetry; this module
provides the minimal instrument set the repro needs — counters, gauges,
histograms and wall-clock timers — behind a registry that can be
swapped for a zero-cost no-op implementation.

Design constraints:

* **Zero cost when disabled** — every engine guards its instrumentation
  with ``if metrics.enabled``; :data:`NULL_METRICS` additionally makes
  each instrument operation a no-op, so a stray unguarded call is still
  nearly free.
* **No dependencies** — instruments are plain Python; histograms store
  raw samples (simulation runs are bounded) and summarize on export.
* **Uniform export** — :meth:`MetricsRegistry.to_dict` produces a
  JSON-compatible snapshot; :meth:`MetricsRegistry.to_csv_rows` a flat
  ``(name, kind, field, value)`` table for spreadsheets.
"""

from __future__ import annotations

import json
import math
import time
from typing import Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing count (arrivals, rejections, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (cluster allocation, queue depth, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def snapshot(self) -> dict:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """A sample distribution, summarized on export.

    Stores raw samples; simulation runs are bounded (one sample per
    placement decision at most), so memory stays proportional to the
    workload size.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    def _percentile(self, q: float) -> float:
        data = sorted(self.samples)
        if not data:
            return math.nan
        pos = q * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def snapshot(self) -> dict:
        n = len(self.samples)
        if not n:
            return {"kind": "histogram", "count": 0}
        return {
            "kind": "histogram",
            "count": n,
            "sum": sum(self.samples),
            "min": min(self.samples),
            "max": max(self.samples),
            "mean": sum(self.samples) / n,
            "p50": self._percentile(0.50),
            "p90": self._percentile(0.90),
            "p99": self._percentile(0.99),
        }


class Timer:
    """Accumulated wall-clock time, usable as a context manager.

    ``with registry.timer("select"):`` accumulates into ``total_s``;
    nested/manual use goes through :meth:`observe`.
    """

    __slots__ = ("name", "total_s", "count", "_started")

    def __init__(self, name: str):
        self.name = name
        self.total_s = 0.0
        self.count = 0
        self._started: Optional[float] = None

    def observe(self, seconds: float) -> None:
        self.total_s += seconds
        self.count += 1

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._started is not None:
            self.observe(time.perf_counter() - self._started)
            self._started = None

    @property
    def rate(self) -> float:
        """Observations per accumulated second (0 while idle).

        For a per-op timer this is the op throughput *inside* the
        timed region — e.g. the ``select_s`` timer's rate is selection
        decisions/sec excluding everything around them.
        """
        return self.count / self.total_s if self.total_s > 0 else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": "timer",
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.total_s / self.count if self.count else 0.0,
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    Instruments live in one flat namespace; asking twice for the same
    name returns the same instrument, asking for a name already held by
    a different instrument kind raises ``ValueError``.
    """

    #: Engines guard instrumentation blocks on this flag.
    enabled: bool = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram | Timer] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise ValueError(
                f"metric {name!r} is a {type(inst).__name__}, not a {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram | Timer]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible snapshot of every instrument."""
        return {name: inst.snapshot() for name, inst in sorted(self._instruments.items())}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_csv_rows(self) -> list[tuple[str, str, str, float]]:
        """Flat ``(name, kind, field, value)`` rows for CSV export."""
        rows: list[tuple[str, str, str, float]] = []
        for name, inst in sorted(self._instruments.items()):
            snap = inst.snapshot()
            kind = snap.pop("kind")
            for field, value in snap.items():
                rows.append((name, kind, field, value))
        return rows

    def to_csv(self) -> str:
        lines = ["name,kind,field,value"]
        for name, kind, field, value in self.to_csv_rows():
            lines.append(f"{name},{kind},{field},{value!r}" if isinstance(value, str)
                         else f"{name},{kind},{field},{value}")
        return "\n".join(lines) + "\n"


class _NullInstrument:
    """Absorbs every instrument operation; shared by all null metrics."""

    __slots__ = ()
    name = "null"
    value = 0
    total_s = 0.0
    count = 0
    samples: list[float] = []

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """The zero-cost mode: hands out one shared do-nothing instrument."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def _get(self, name: str, cls):
        return _NULL_INSTRUMENT

    def to_dict(self) -> dict:
        return {}


#: Shared default; engines use it when no registry is supplied.
NULL_METRICS = NullMetricsRegistry()
