"""Registered metric names — the only strings the emit sites may use.

Every ``metrics.counter(...)`` / ``gauge`` / ``histogram`` / ``timer``
call site in the library must reference one of these constants instead
of an inline string literal.  The static-analysis pass
(:mod:`repro.devtools.lint`, rule R008) enforces this, which buys two
properties production telemetry depends on:

* **grep-ability** — every emit site of a metric is found by searching
  for the constant, and renames are one-line changes;
* **schema stability** — dashboards and the differential audit tooling
  key on these names; a typo'd literal would silently fork a series.

Adding a metric: define the constant here, add it to
:data:`ALL_METRIC_NAMES`, then emit via the constant.
"""

from __future__ import annotations

__all__ = [
    "ARRIVALS",
    "REJECTIONS",
    "PLACEMENTS",
    "POOLED",
    "DEPARTURES",
    "SELECT_S",
    "CANDIDATES",
    "FINAL_ALLOC_CPU",
    "FINAL_ALLOC_MEM",
    "RUNNER_CELLS_TOTAL",
    "RUNNER_CELLS_SKIPPED",
    "RUNNER_CELLS_DONE",
    "RUNNER_CELLS_FAILED",
    "RUNNER_CELL_SECONDS",
    "RUNNER_SWEEP_WALL",
    "RUNNER_THROUGHPUT_CELLS_PER_S",
    "OVERSUB_UPDATES",
    "OVERSUB_HOST_WINDOWS",
    "OVERSUB_VIOLATIONS",
    "OVERSUB_EFF_RATIO",
    "OVERSUB_EFF_CPU_TOTAL",
    "SHARD_COUNT",
    "SHARD_ROUTED",
    "SHARD_QUEUE_DEPTH",
    "SHARD_IMBALANCE",
    "SHARD_WALL_S",
    "SHARD_MERGE_S",
    "SERVING_ARRIVALS",
    "SERVING_PLACED",
    "SERVING_PENDING",
    "SERVING_REJECTED",
    "SERVING_TIMEOUTS",
    "SERVING_DEPARTURES",
    "SERVING_LATENCY_PLACEMENT",
    "SERVING_LATENCY_WAIT",
    "SERVING_QUEUE_DEPTH",
    "SERVING_TIMEOUT_RATE",
    "SERVING_REJECT_RATE",
    "ALL_METRIC_NAMES",
]

# -- engine counters/timers (object + vector path, identical names) ----------

#: Counter — one per ARRIVAL event processed.
ARRIVALS = "arrivals"
#: Counter — arrivals no host could admit.
REJECTIONS = "rejections"
#: Counter — successful deployments.
PLACEMENTS = "placements"
#: Counter — deployments admitted via §V-B pooling.
POOLED = "pooled"
#: Counter — departures of VMs that were actually placed.
DEPARTURES = "departures"
#: Timer — wall-clock spent inside host selection.
SELECT_S = "select_s"
#: Histogram — eligible candidate hosts per recorded decision.
CANDIDATES = "candidates"
#: Gauge — cluster-wide allocated CPUs after the last event.
FINAL_ALLOC_CPU = "final_alloc_cpu"
#: Gauge — cluster-wide allocated memory (GB) after the last event.
FINAL_ALLOC_MEM = "final_alloc_mem"

# -- sweep runner ------------------------------------------------------------

#: Counter — cells in the sweep grid.
RUNNER_CELLS_TOTAL = "runner.cells_total"
#: Counter — cells satisfied by a resumed checkpoint.
RUNNER_CELLS_SKIPPED = "runner.cells_skipped"
#: Counter — cells completed by this invocation.
RUNNER_CELLS_DONE = "runner.cells_done"
#: Counter — cells that completed with a failure record.
RUNNER_CELLS_FAILED = "runner.cells_failed"
#: Histogram — per-cell wall-clock seconds.
RUNNER_CELL_SECONDS = "runner.cell_seconds"
#: Timer — whole-sweep wall clock.
RUNNER_SWEEP_WALL = "runner.sweep_wall"
#: Gauge — completed cells per second over the sweep.
RUNNER_THROUGHPUT_CELLS_PER_S = "runner.throughput_cells_per_s"

# -- dynamic oversubscription (repro.oversub) --------------------------------

#: Counter — estimator update rounds executed by the controller.
OVERSUB_UPDATES = "oversub.updates"
#: Counter — host observation windows collected across all updates.
OVERSUB_HOST_WINDOWS = "oversub.host_windows"
#: Counter — host windows whose demand peak breached the violation
#: threshold (counted for every strategy, including the static baseline).
OVERSUB_VIOLATIONS = "oversub.violations"
#: Histogram — per-update mean of effective/physical capacity ratios.
OVERSUB_EFF_RATIO = "oversub.eff_ratio"
#: Gauge — cluster-wide effective CPU capacity after the last update.
OVERSUB_EFF_CPU_TOTAL = "oversub.eff_cpu_total"

# -- sharded simulation (repro.sharding) -------------------------------------

#: Gauge — shard count of the current sharded run.
SHARD_COUNT = "shard.count"
#: Counter — arrival routing decisions made by the dispatcher.
SHARD_ROUTED = "shard.routed"
#: Histogram — VMs routed to each shard (one observation per shard).
SHARD_QUEUE_DEPTH = "shard.queue_depth"
#: Gauge — routing imbalance: max/mean of the per-shard VM counts.
SHARD_IMBALANCE = "shard.imbalance"
#: Timer — per-shard simulation wall clock (one observation per shard).
SHARD_WALL_S = "shard.wall_s"
#: Timer — wall clock of the dispatcher's result-stream merge.
SHARD_MERGE_S = "shard.merge_s"

# -- online placement service (repro.serving) --------------------------------

#: Counter — service requests generated inside the admission window.
SERVING_ARRIVALS = "serving.arrivals"
#: Counter — requests placed ACTIVE by the scheduler task.
SERVING_PLACED = "serving.placed"
#: Counter — requests admitted to a controller's capacity-pending queue.
SERVING_PENDING = "serving.pending"
#: Counter — requests rejected by backpressure (service queue at its
#: bound) or a full controller pending queue.
SERVING_REJECTED = "serving.rejected"
#: Counter — requests that exceeded the placement timeout while queued
#: or capacity-pending.
SERVING_TIMEOUTS = "serving.timeouts"
#: Counter — placed VMs released at the end of their lifetime.
SERVING_DEPARTURES = "serving.departures"
#: Histogram — wall-clock seconds of scheduler compute per decision
#: (the user-facing latency of the placement kernel itself).
SERVING_LATENCY_PLACEMENT = "serving.latency.placement"
#: Histogram — virtual seconds from arrival to placement decision.
SERVING_LATENCY_WAIT = "serving.latency.wait"
#: Histogram — service queue depth sampled at each admission attempt.
SERVING_QUEUE_DEPTH = "serving.queue.depth"
#: Gauge — timeouts / arrivals over the completed run.
SERVING_TIMEOUT_RATE = "serving.timeout.rate"
#: Gauge — rejections / arrivals over the completed run.
SERVING_REJECT_RATE = "serving.reject.rate"

#: Every registered metric name; the R008 fixture tests and the
#: registry round-trip test key off this set.
ALL_METRIC_NAMES: frozenset[str] = frozenset(
    {
        ARRIVALS,
        REJECTIONS,
        PLACEMENTS,
        POOLED,
        DEPARTURES,
        SELECT_S,
        CANDIDATES,
        FINAL_ALLOC_CPU,
        FINAL_ALLOC_MEM,
        RUNNER_CELLS_TOTAL,
        RUNNER_CELLS_SKIPPED,
        RUNNER_CELLS_DONE,
        RUNNER_CELLS_FAILED,
        RUNNER_CELL_SECONDS,
        RUNNER_SWEEP_WALL,
        RUNNER_THROUGHPUT_CELLS_PER_S,
        OVERSUB_UPDATES,
        OVERSUB_HOST_WINDOWS,
        OVERSUB_VIOLATIONS,
        OVERSUB_EFF_RATIO,
        OVERSUB_EFF_CPU_TOTAL,
        SHARD_COUNT,
        SHARD_ROUTED,
        SHARD_QUEUE_DEPTH,
        SHARD_IMBALANCE,
        SHARD_WALL_S,
        SHARD_MERGE_S,
        SERVING_ARRIVALS,
        SERVING_PLACED,
        SERVING_PENDING,
        SERVING_REJECTED,
        SERVING_TIMEOUTS,
        SERVING_DEPARTURES,
        SERVING_LATENCY_PLACEMENT,
        SERVING_LATENCY_WAIT,
        SERVING_QUEUE_DEPTH,
        SERVING_TIMEOUT_RATE,
        SERVING_REJECT_RATE,
    }
)
