"""Structured per-placement decision records and the recorder protocol.

Every arrival handled by a scheduler produces one
:class:`DecisionRecord`: the filter verdicts for each host, the
per-weigher scores of the surviving candidates, the chosen host, and
the admission plan the local scheduler executed (own-level growth,
§V-B pooling, or rejection).  Both engines — the object path
(:class:`~repro.simulator.engine.Simulation` +
:class:`~repro.scheduling.global_scheduler.ScoreBasedScheduler` +
:class:`~repro.localsched.agent.LocalScheduler`) and the vectorized
path (:class:`~repro.simulator.vectorpool.VectorSimulation`) — emit the
same record shape through the same recorder protocol, which is what
makes the differential audit in :mod:`repro.obs.audit` possible.

Recorders are deliberately dumb sinks.  The engines guard every
record-construction block with ``recorder.enabled``, so the default
:data:`NULL_RECORDER` costs one attribute check per event.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional

__all__ = [
    "ADMISSION_GROWTH",
    "ADMISSION_POOLED",
    "ADMISSION_REJECTED",
    "HostDecision",
    "DecisionRecord",
    "AdmissionRecord",
    "DecisionRecorder",
    "NullRecorder",
    "MemoryRecorder",
    "JsonlRecorder",
    "NULL_RECORDER",
    "load_jsonl_records",
]

#: Admission plan kinds (the three outcomes of §V admission).
ADMISSION_GROWTH = "growth"  # own-level vNode placement (growth may be 0)
ADMISSION_POOLED = "pooled"  # §V-B slack pooling upgrade
ADMISSION_REJECTED = "rejected"  # no host passed the filters


@dataclass(frozen=True, slots=True)
class HostDecision:
    """One host's view of one placement decision.

    ``filters`` maps filter name to verdict; a host is a candidate iff
    every verdict is True.  ``weigher_scores`` maps weigher name to its
    *weighted* contribution and is only populated for candidates
    (non-candidates are never scored); ``score`` is their sum.
    """

    host: int
    eligible: bool
    filters: dict[str, bool]
    weigher_scores: dict[str, float] = field(default_factory=dict)
    score: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "host": self.host,
            "eligible": self.eligible,
            "filters": dict(self.filters),
            "weigher_scores": dict(self.weigher_scores),
            "score": self.score,
        }


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """One global placement decision (one workload arrival)."""

    seq: int  # 0-based arrival index within the run
    time: float  # simulation timestamp of the arrival
    vm_id: str
    scheduler: str  # scheduler/policy name
    hosts: tuple[HostDecision, ...]
    chosen: Optional[int]  # host index, None on rejection
    admission: str  # one of the ADMISSION_* kinds
    hosted_ratio: Optional[float] = None  # level that actually hosts the VM
    growth: Optional[int] = None  # CPUs the vNode acquired (own-level path)

    @property
    def candidates(self) -> tuple[int, ...]:
        return tuple(h.host for h in self.hosts if h.eligible)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "time": self.time,
            "vm_id": self.vm_id,
            "scheduler": self.scheduler,
            "hosts": [h.to_dict() for h in self.hosts],
            "chosen": self.chosen,
            "admission": self.admission,
            "hosted_ratio": self.hosted_ratio,
            "growth": self.growth,
        }


@dataclass(frozen=True, slots=True)
class AdmissionRecord:
    """One local-scheduler admission (the PM-side half of a decision).

    Emitted by :class:`~repro.localsched.agent.LocalScheduler` (and its
    vectorized mirror) at deploy time — the ground truth of what the PM
    actually executed, independent of what the global scheduler
    intended.
    """

    vm_id: str
    host: str  # machine name (the local agent does not know its rank)
    hosted_ratio: float
    growth: int
    pooled: bool

    def to_dict(self) -> dict:
        return {
            "vm_id": self.vm_id,
            "host": self.host,
            "hosted_ratio": self.hosted_ratio,
            "growth": self.growth,
            "pooled": self.pooled,
        }


class DecisionRecorder:
    """Base recorder: the shared protocol both engines emit through.

    Subclasses override the ``record_*`` hooks; the base class ignores
    everything, so a recorder interested only in global decisions can
    override just :meth:`record_decision`.
    """

    #: Engines skip record construction entirely when this is False.
    enabled: bool = True

    def record_decision(self, record: DecisionRecord) -> None:  # pragma: no cover
        pass

    def record_admission(self, record: AdmissionRecord) -> None:  # pragma: no cover
        pass


class NullRecorder(DecisionRecorder):
    """The zero-cost default: nothing is ever constructed or stored."""

    enabled = False


class MemoryRecorder(DecisionRecorder):
    """Keeps every record in memory — the audit tool's workhorse."""

    def __init__(self) -> None:
        self.decisions: list[DecisionRecord] = []
        self.admissions: list[AdmissionRecord] = []

    def record_decision(self, record: DecisionRecord) -> None:
        self.decisions.append(record)

    def record_admission(self, record: AdmissionRecord) -> None:
        self.admissions.append(record)

    def __len__(self) -> int:
        return len(self.decisions)


class JsonlRecorder(DecisionRecorder):
    """Streams records to a JSON-Lines sink (one object per line).

    Each line carries a ``"record"`` discriminator (``"decision"`` or
    ``"admission"``) so mixed streams stay parseable.
    """

    def __init__(self, sink: str | Path | IO[str]):
        if hasattr(sink, "write"):
            self._fh: IO[str] = sink  # type: ignore[assignment]
            self._owned = False
        else:
            self._fh = open(sink, "w", encoding="utf-8")
            self._owned = True

    def _emit(self, kind: str, payload: dict) -> None:
        payload = {"record": kind, **payload}
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")

    def record_decision(self, record: DecisionRecord) -> None:
        self._emit("decision", record.to_dict())

    def record_admission(self, record: AdmissionRecord) -> None:
        self._emit("admission", record.to_dict())

    def close(self) -> None:
        if self._owned:
            self._fh.close()

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Shared default recorder; engines use it when none is supplied.
NULL_RECORDER = NullRecorder()


def _host_from_dict(row: dict) -> HostDecision:
    return HostDecision(
        host=int(row["host"]),
        eligible=bool(row["eligible"]),
        filters={str(k): bool(v) for k, v in row["filters"].items()},
        weigher_scores={
            str(k): float(v) for k, v in row.get("weigher_scores", {}).items()
        },
        score=None if row.get("score") is None else float(row["score"]),
    )


def _decision_from_dict(row: dict) -> DecisionRecord:
    return DecisionRecord(
        seq=int(row["seq"]),
        time=float(row["time"]),
        vm_id=str(row["vm_id"]),
        scheduler=str(row["scheduler"]),
        hosts=tuple(_host_from_dict(h) for h in row["hosts"]),
        chosen=None if row.get("chosen") is None else int(row["chosen"]),
        admission=str(row["admission"]),
        hosted_ratio=(
            None if row.get("hosted_ratio") is None else float(row["hosted_ratio"])
        ),
        growth=None if row.get("growth") is None else int(row["growth"]),
    )


def _admission_from_dict(row: dict) -> AdmissionRecord:
    return AdmissionRecord(
        vm_id=str(row["vm_id"]),
        host=str(row["host"]),
        hosted_ratio=float(row["hosted_ratio"]),
        growth=int(row["growth"]),
        pooled=bool(row["pooled"]),
    )


def load_jsonl_records(
    path: str | Path,
) -> tuple[list[DecisionRecord], list[AdmissionRecord]]:
    """Parse a :class:`JsonlRecorder` stream back into record objects.

    The inverse of the recorder's ``_emit``: lines are dispatched on the
    ``"record"`` discriminator, unknown kinds raise ``ValueError`` (a
    corrupt or foreign file should fail loudly, not load partially).
    The round-trip is exact for every field the records carry, which is
    what lets the golden-trace conformance suite replay a frozen stream
    through :func:`repro.obs.audit.diff_decision_streams`.
    """
    decisions: list[DecisionRecord] = []
    admissions: list[AdmissionRecord] = []
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            kind = row.pop("record", None)
            if kind == "decision":
                decisions.append(_decision_from_dict(row))
            elif kind == "admission":
                admissions.append(_admission_from_dict(row))
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown record kind {kind!r}"
                )
    return decisions, admissions
