"""Differential audit: replay one workload through both engines and
localize the first divergence.

The repo's load-bearing guarantee is that the object path
(:class:`~repro.simulator.engine.Simulation`) and the vectorized hot
path (:class:`~repro.simulator.vectorpool.VectorSimulation`) place
identically.  The equivalence tests assert that as a pass/fail; this
module turns it into a *localization* tool: it records both engines'
per-arrival :class:`~repro.obs.records.DecisionRecord` streams, diffs
them event-by-event, and reports the first disagreement with the full
candidate/score context of both sides — which arrival, which hosts
each engine considered eligible, how each scored them, and what each
admitted.

Entry points: :func:`audit_workload` (library) and the ``audit`` CLI
subcommand (``repro audit`` / ``slackvm audit``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional, Sequence

from repro.core.config import SlackVMConfig
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.localsched.agent import LocalScheduler
from repro.obs.metrics import MetricsRegistry
from repro.obs.records import DecisionRecord, MemoryRecorder
from repro.scheduling.baselines import scheduler_for_policy
from repro.simulator.engine import Simulation, SimulationResult
from repro.simulator.vectorpool import VectorSimulation

__all__ = ["Divergence", "AuditReport", "audit_workload", "diff_decision_streams"]

#: Relative tolerance when comparing total scores across engines.  The
#: two paths compute the same formulas through different float
#: pipelines (scalar vs numpy reductions), so bit-exact equality is not
#: guaranteed; placement decisions, however, must match exactly.
SCORE_RTOL = 1e-6


@dataclass(frozen=True, slots=True)
class Divergence:
    """One disagreement between the engines' decision streams."""

    seq: int  # arrival index where the streams disagree
    vm_id: str
    kind: str  # which field diverged (chosen/admission/candidates/...)
    object_value: object
    vector_value: object
    object_decision: Optional[DecisionRecord] = None
    vector_decision: Optional[DecisionRecord] = None

    def describe(self) -> str:
        lines = [
            f"arrival #{self.seq} (vm {self.vm_id}): {self.kind} diverged",
            f"  object path: {self.object_value!r}",
            f"  vector path: {self.vector_value!r}",
        ]
        for label, dec in (
            ("object", self.object_decision),
            ("vector", self.vector_decision),
        ):
            if dec is None:
                continue
            lines.append(
                f"  {label} decision: chosen={dec.chosen} admission={dec.admission} "
                f"hosted_ratio={dec.hosted_ratio} growth={dec.growth}"
            )
            for h in dec.hosts:
                if h.eligible:
                    lines.append(
                        f"    host {h.host}: eligible score={h.score!r} "
                        f"({h.weigher_scores})"
                    )
                else:
                    failed = [name for name, ok in h.filters.items() if not ok]
                    lines.append(f"    host {h.host}: filtered out by {failed}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "vm_id": self.vm_id,
            "kind": self.kind,
            "object_value": self.object_value,
            "vector_value": self.vector_value,
            "object_decision": (
                self.object_decision.to_dict() if self.object_decision else None
            ),
            "vector_decision": (
                self.vector_decision.to_dict() if self.vector_decision else None
            ),
        }


@dataclass
class AuditReport:
    """The outcome of one differential replay."""

    policy: str
    num_hosts: int
    num_arrivals: int
    divergences: list[Divergence]
    object_result: SimulationResult
    vector_result: SimulationResult
    object_decisions: list[DecisionRecord]
    vector_decisions: list[DecisionRecord]
    object_metrics: dict = field(default_factory=dict)
    vector_metrics: dict = field(default_factory=dict)
    object_wall_s: float = 0.0
    vector_wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def first_divergence(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None

    def summary(self) -> str:
        lines = [
            f"audit: policy={self.policy} hosts={self.num_hosts} "
            f"arrivals={self.num_arrivals}",
            f"  object path: {len(self.object_result.placements)} placed, "
            f"{len(self.object_result.rejections)} rejected, "
            f"{self.object_result.pooled_placements} pooled "
            f"({self.object_wall_s:.3f}s)",
            f"  vector path: {len(self.vector_result.placements)} placed, "
            f"{len(self.vector_result.rejections)} rejected, "
            f"{self.vector_result.pooled_placements} pooled "
            f"({self.vector_wall_s:.3f}s)",
        ]
        if self.ok:
            lines.append("  divergences: 0 — engines agree event-by-event")
        else:
            lines.append(f"  divergences: {len(self.divergences)} (first shown)")
            lines.append(self.first_divergence.describe())
        return "\n".join(lines)

    def to_dict(self, include_decisions: bool = True) -> dict:
        payload = {
            "policy": self.policy,
            "num_hosts": self.num_hosts,
            "num_arrivals": self.num_arrivals,
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
            "object": {
                "placed": len(self.object_result.placements),
                "rejected": len(self.object_result.rejections),
                "pooled": self.object_result.pooled_placements,
                "wall_s": self.object_wall_s,
                "metrics": self.object_metrics,
            },
            "vector": {
                "placed": len(self.vector_result.placements),
                "rejected": len(self.vector_result.rejections),
                "pooled": self.vector_result.pooled_placements,
                "wall_s": self.vector_wall_s,
                "metrics": self.vector_metrics,
            },
        }
        if include_decisions:
            payload["decisions"] = {
                "object": [d.to_dict() for d in self.object_decisions],
                "vector": [d.to_dict() for d in self.vector_decisions],
            }
        return payload


def _scores_close(a: Optional[float], b: Optional[float]) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=SCORE_RTOL, abs_tol=SCORE_RTOL)


def diff_decision_streams(
    obj: Sequence[DecisionRecord],
    vec: Sequence[DecisionRecord],
    max_divergences: int = 10,
) -> list[Divergence]:
    """Event-by-event diff of two decision streams.

    Comparison order per arrival: stream alignment (vm id), candidate
    set, chosen host, admission kind, hosted level, vNode growth, then
    per-candidate total scores (within :data:`SCORE_RTOL`).  The first
    failing field is reported for each arrival; collection stops after
    ``max_divergences`` so a systematic drift doesn't flood the report.
    """
    divergences: list[Divergence] = []

    def add(seq, vm_id, kind, ov, vv, od=None, vd=None) -> bool:
        divergences.append(Divergence(seq, vm_id, kind, ov, vv, od, vd))
        return len(divergences) >= max_divergences

    if len(obj) != len(vec):
        add(
            min(len(obj), len(vec)),
            "<stream>",
            "stream_length",
            len(obj),
            len(vec),
        )
    for o, v in zip(obj, vec):
        if o.vm_id != v.vm_id:
            if add(o.seq, o.vm_id, "vm_id", o.vm_id, v.vm_id, o, v):
                break
            continue
        if o.candidates != v.candidates:
            if add(o.seq, o.vm_id, "candidates", o.candidates, v.candidates, o, v):
                break
            continue
        if o.chosen != v.chosen:
            if add(o.seq, o.vm_id, "chosen", o.chosen, v.chosen, o, v):
                break
            continue
        if o.admission != v.admission:
            if add(o.seq, o.vm_id, "admission", o.admission, v.admission, o, v):
                break
            continue
        if o.hosted_ratio != v.hosted_ratio:
            if add(o.seq, o.vm_id, "hosted_ratio", o.hosted_ratio, v.hosted_ratio, o, v):
                break
            continue
        if o.growth != v.growth:
            if add(o.seq, o.vm_id, "growth", o.growth, v.growth, o, v):
                break
            continue
        oscores = {h.host: h.score for h in o.hosts if h.eligible}
        vscores = {h.host: h.score for h in v.hosts if h.eligible}
        bad = [
            (j, oscores[j], vscores[j])
            for j in oscores
            if j in vscores and not _scores_close(oscores[j], vscores[j])
        ]
        if bad:
            j, oscore, vscore = bad[0]
            if add(
                o.seq, o.vm_id, "scores",
                {"host": j, "score": oscore},
                {"host": j, "score": vscore},
                o, v,
            ):
                break
    return divergences


def audit_workload(
    workload: list[VMRequest],
    machines: Sequence[MachineSpec],
    policy: str = "progress",
    config: Optional[SlackVMConfig] = None,
    max_divergences: int = 10,
) -> AuditReport:
    """Replay ``workload`` through both engines and diff their decisions.

    The object path gets one :class:`LocalScheduler` per machine (same
    machine specs, same config) and the scheduler matching ``policy``
    via :func:`~repro.scheduling.baselines.scheduler_for_policy`; the
    vector path gets :class:`VectorSimulation` with the policy string.
    Both run fully instrumented (decision records + metrics).
    """
    cfg = config or SlackVMConfig()
    scheduler = scheduler_for_policy(policy)

    obj_recorder = MemoryRecorder()
    obj_metrics = MetricsRegistry()
    hosts = [LocalScheduler(m, cfg) for m in machines]
    t0 = perf_counter()
    obj_result = Simulation(
        hosts, scheduler, recorder=obj_recorder, metrics=obj_metrics
    ).run(workload)
    obj_wall = perf_counter() - t0

    vec_recorder = MemoryRecorder()
    vec_metrics = MetricsRegistry()
    t0 = perf_counter()
    vec_result = VectorSimulation(
        machines, config=cfg, policy=policy,
        recorder=vec_recorder, metrics=vec_metrics,
    ).run(workload)
    vec_wall = perf_counter() - t0

    divergences = diff_decision_streams(
        obj_recorder.decisions, vec_recorder.decisions, max_divergences
    )
    return AuditReport(
        policy=policy,
        num_hosts=len(list(machines)),
        num_arrivals=len(obj_recorder.decisions),
        divergences=divergences,
        object_result=obj_result,
        vector_result=vec_result,
        object_decisions=obj_recorder.decisions,
        vector_decisions=vec_recorder.decisions,
        object_metrics=obj_metrics.to_dict(),
        vector_metrics=vec_metrics.to_dict(),
        object_wall_s=obj_wall,
        vector_wall_s=vec_wall,
    )
