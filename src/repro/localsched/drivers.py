"""Hypervisor driver interface (the libvirt boundary of §IV/§V).

The paper's local scheduler "interfaces with the hypervisor using the
libvirt library ... with QEMU/KVM due to its native support for dynamic
CPU pinning changes".  This module defines that boundary so the agent's
decisions translate into an explicit operation stream:

* ``create_vm`` — define & start a domain pinned to its vNode's CPUs;
* ``destroy_vm`` — stop & undefine a domain;
* ``repin_vm`` — extend/shrink a running domain's pinning when its
  vNode resizes (the dynamic capability the paper relies on).

:class:`RecordingDriver` captures the stream for tests and dry runs —
the repository has no hypervisor to talk to — and is the template for a
real libvirt implementation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.types import VMRequest

__all__ = ["HypervisorDriver", "NullDriver", "RecordingDriver", "DriverOp"]


class HypervisorDriver(ABC):
    """Translates local-scheduler decisions into hypervisor actions."""

    @abstractmethod
    def create_vm(self, vm: VMRequest, cpu_ids: Sequence[int]) -> None:
        """Define and start ``vm`` pinned to ``cpu_ids``."""

    @abstractmethod
    def destroy_vm(self, vm_id: str) -> None:
        """Stop and undefine ``vm_id``."""

    @abstractmethod
    def repin_vm(self, vm_id: str, cpu_ids: Sequence[int]) -> None:
        """Change a running domain's CPU pinning to ``cpu_ids``."""


class NullDriver(HypervisorDriver):
    """No-op driver (pure accounting mode)."""

    def create_vm(self, vm: VMRequest, cpu_ids: Sequence[int]) -> None:
        pass

    def destroy_vm(self, vm_id: str) -> None:
        pass

    def repin_vm(self, vm_id: str, cpu_ids: Sequence[int]) -> None:
        pass


@dataclass(frozen=True, slots=True)
class DriverOp:
    """One recorded hypervisor operation."""

    action: str  # "create" | "destroy" | "repin"
    vm_id: str
    cpu_ids: tuple[int, ...] = ()


@dataclass
class RecordingDriver(HypervisorDriver):
    """Records every operation; the test double for the libvirt layer."""

    ops: list[DriverOp] = field(default_factory=list)

    def create_vm(self, vm: VMRequest, cpu_ids: Sequence[int]) -> None:
        self.ops.append(DriverOp("create", vm.vm_id, tuple(cpu_ids)))

    def destroy_vm(self, vm_id: str) -> None:
        self.ops.append(DriverOp("destroy", vm_id))

    def repin_vm(self, vm_id: str, cpu_ids: Sequence[int]) -> None:
        self.ops.append(DriverOp("repin", vm_id, tuple(cpu_ids)))

    def actions(self, action: str | None = None) -> list[DriverOp]:
        if action is None:
            return list(self.ops)
        return [op for op in self.ops if op.action == action]

    def pinning_of(self, vm_id: str) -> tuple[int, ...]:
        """The VM's pinning after the last relevant operation."""
        for op in reversed(self.ops):
            if op.vm_id == vm_id and op.action in ("create", "repin"):
                return op.cpu_ids
        raise KeyError(f"no pinning recorded for {vm_id}")
