"""The SlackVM *local scheduler* (paper §V).

One :class:`LocalScheduler` manages one PM.  It segregates the PM's
logical CPUs into per-level vNodes, dynamically grows/shrinks them on VM
arrival/departure, and (optionally) uses the topology-driven allocator
for cache-aware CPU selection.

Two operating modes:

* **topology mode** — pass a :class:`~repro.hardware.topology.Topology`;
  CPU ids are real logical CPUs and selection follows Algorithm 1.
  Used by the performance-model testbed and the pinning examples.
* **accounting mode** (default) — CPU ids are abstract slots picked in
  index order.  Capacity bookkeeping is identical; this is what the
  at-scale simulation uses, since packing results depend only on
  allocation arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.config import SlackVMConfig
from repro.core.errors import CapacityError, ConfigError
from repro.core.types import OversubscriptionLevel, ResourceVector, VMRequest
from repro.hardware.machine import MachineSpec
from repro.hardware.topology import Topology
from repro.localsched.allocator import CoreAllocator
from repro.localsched.drivers import HypervisorDriver, NullDriver
from repro.core.constants import CAPACITY_EPSILON
from repro.localsched.vnode import VNode
from repro.obs.records import AdmissionRecord, DecisionRecorder

__all__ = ["DeployPlan", "Placement", "LocalScheduler"]


class _SlotAllocator:
    """Index-order CPU-slot allocator for accounting mode.

    Mirrors :class:`CoreAllocator`'s interface without needing a
    topology — the hot path of the at-scale simulation.
    """

    def __init__(self, num_cpus: int):
        self._free: list[int] = list(range(num_cpus - 1, -1, -1))  # pop() -> lowest id
        self._free_set: set[int] = set(range(num_cpus))

    @property
    def num_free(self) -> int:
        return len(self._free)

    def pick_grow(self, anchor: Sequence[int], count: int) -> list[int]:
        if count > len(self._free):
            raise CapacityError(
                f"requested {count} CPUs but only {len(self._free)} are free"
            )
        chosen = [self._free.pop() for _ in range(count)]
        self._free_set.difference_update(chosen)
        return chosen

    def pick_seed(self, count: int, occupied: Sequence[int]) -> list[int]:
        return self.pick_grow((), count)

    def release(self, cpu_ids: Iterable[int]) -> None:
        ids = list(cpu_ids)
        dup = [c for c in ids if c in self._free_set]
        if dup:
            raise CapacityError(f"CPUs {dup} are already free")
        self._free_set.update(ids)
        self._free.extend(sorted(ids, reverse=True))
        # Keep pop() returning the lowest free id for determinism.
        self._free.sort(reverse=True)


@dataclass(frozen=True, slots=True)
class DeployPlan:
    """A feasible (non-mutating) admission decision for one VM."""

    vm_id: str
    hosted_ratio: float  # ratio of the vNode that will host the VM
    growth: int  # CPUs the vNode must acquire
    pooled: bool  # True when §V-B pooling upgrades the VM


@dataclass(frozen=True, slots=True)
class Placement:
    """The result of an effective deployment."""

    vm_id: str
    hosted_level: OversubscriptionLevel
    sold_level: OversubscriptionLevel
    new_cpus: tuple[int, ...]
    pooled: bool


class LocalScheduler:
    """Per-PM agent managing vNodes for every oversubscription level."""

    def __init__(
        self,
        machine: MachineSpec,
        config: SlackVMConfig | None = None,
        topology: Optional[Topology] = None,
        driver: Optional[HypervisorDriver] = None,
        recorder: Optional[DecisionRecorder] = None,
    ):
        self.machine = machine
        self.config = config or SlackVMConfig()
        self.topology = topology
        #: Hypervisor boundary (§IV): receives create/destroy/repin ops.
        self.driver = driver or NullDriver()
        #: Observability sink (repro.obs): receives one admission record
        #: per deploy when set and enabled.
        self.recorder = recorder
        if topology is not None:
            if topology.num_cpus != machine.cpus:
                raise ConfigError(
                    f"topology has {topology.num_cpus} CPUs, machine spec says {machine.cpus}"
                )
            self._alloc: CoreAllocator | _SlotAllocator = CoreAllocator(
                topology, topology_aware=self.config.topology_aware
            )
        else:
            self._alloc = _SlotAllocator(machine.cpus)
        self._vnodes: dict[float, VNode] = {}
        self._vm_home: dict[str, float] = {}  # vm_id -> hosting vNode ratio
        self._mem_used = 0.0
        self._seq = 0
        #: Incremented whenever any vNode's CPU set changes (pinning events).
        self.pin_generation = 0

    # -- state reporting ---------------------------------------------------

    @property
    def vnodes(self) -> tuple[VNode, ...]:
        return tuple(self._vnodes.values())

    def vnode_for(self, level: OversubscriptionLevel) -> Optional[VNode]:
        return self._vnodes.get(level.ratio)

    @property
    def num_vms(self) -> int:
        return len(self._vm_home)

    @property
    def allocated_cpus(self) -> int:
        """Logical CPUs reserved by vNodes (the PM-level CPU allocation)."""
        return sum(v.num_cpus for v in self._vnodes.values())

    @property
    def allocated_mem(self) -> float:
        return self._mem_used

    @property
    def free_cpus(self) -> int:
        return self.machine.cpus - self.allocated_cpus

    @property
    def free_mem(self) -> float:
        return self.machine.mem_gb - self._mem_used

    def allocation(self) -> ResourceVector:
        """PM-level allocation vector consumed by Algorithm 2.

        CPU counts *physical* reservations (vNode CPU sets), so a 3:1
        vNode hosting 9 vCPUs contributes 3 CPUs — oversubscribed
        vNodes are "considered through the PM allocation" (§VI).
        """
        return ResourceVector(float(self.allocated_cpus), self._mem_used)

    def free(self) -> ResourceVector:
        return ResourceVector(float(self.free_cpus), self.free_mem)

    @property
    def is_empty(self) -> bool:
        return not self._vm_home

    def hosted_vm_ids(self) -> tuple[str, ...]:
        return tuple(self._vm_home)

    # -- admission ----------------------------------------------------------

    def supports(self, level: OversubscriptionLevel) -> bool:
        """Whether this PM is configured to offer ``level``.

        Dedicated-cluster baselines configure each PM with a single
        level; SlackVM PMs are configured with all of them.
        """
        return any(
            lv.ratio == level.ratio and lv.mem_ratio == level.mem_ratio
            for lv in self.config.levels
        )

    def plan(self, vm: VMRequest) -> Optional[DeployPlan]:
        """Non-mutating feasibility check; None when the VM cannot fit.

        Tries the VM's own level first (growing its vNode if needed),
        then — when pooling is enabled — the slack of stricter
        *oversubscribed* vNodes (§V-B upgrade), without growing them.
        """
        if not self.supports(vm.level):
            return None
        own = self._vnodes.get(vm.level.ratio)
        growth = (
            own.growth_for(vm)
            if own is not None
            else VNode("probe", vm.level).growth_for(vm)
        )
        own_mem = vm.level.physical_mem_for(vm.spec.mem_gb)
        if growth <= self._alloc.num_free and own_mem <= self.free_mem + CAPACITY_EPSILON:
            return DeployPlan(vm.vm_id, vm.level.ratio, growth, pooled=False)
        if self.config.pooling and vm.level.ratio > 1:
            host = self._pooling_candidate(vm)
            if host is not None:
                return DeployPlan(vm.vm_id, host.level.ratio, 0, pooled=True)
        return None

    def _pooling_candidate(self, vm: VMRequest) -> Optional[VNode]:
        """Strictest-fit oversubscribed vNode whose slack can absorb ``vm``.

        Only levels with ratio in (1, vm.ratio) qualify: premium 1:1
        resources are never pooled, and a looser vNode cannot honour a
        stricter guarantee.  Among candidates we prefer the loosest
        qualifying level (the smallest "upgrade").
        """
        candidates = [
            node
            for ratio, node in self._vnodes.items()
            if 1 < ratio < vm.level.ratio
            and node.vcpu_slack >= vm.spec.vcpus
            and node.level.physical_mem_for(vm.spec.mem_gb) <= self.free_mem + CAPACITY_EPSILON
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda n: n.level.ratio)

    def can_deploy(self, vm: VMRequest) -> bool:
        return self.plan(vm) is not None

    # -- deployment ----------------------------------------------------------

    def deploy(self, vm: VMRequest) -> Placement:
        plan = self.plan(vm)
        if plan is None:
            raise CapacityError(
                f"PM {self.machine.name}: cannot host VM {vm.vm_id} "
                f"({vm.spec.vcpus} vCPU / {vm.spec.mem_gb} GB @ {vm.level.name})"
            )
        node = self._vnodes.get(plan.hosted_ratio)
        new_cpus: list[int] = []
        if node is None:
            node = VNode(f"{self.machine.name}/vnode-{self._seq}", vm.level)
            self._seq += 1
            self._vnodes[vm.level.ratio] = node
        if plan.growth:
            occupied = [c for v in self._vnodes.values() for c in v.cpu_ids]
            if node.num_cpus:
                new_cpus = self._alloc.pick_grow(node.cpu_ids, plan.growth)
            else:
                new_cpus = self._alloc.pick_seed(plan.growth, occupied)
            node.extend_cpus(new_cpus)
            self.pin_generation += 1
            # §V: "extending the pinning of all hosted VMs in that vNode
            # to the new range".
            for resident in node.vm_ids:
                self.driver.repin_vm(resident, node.cpu_ids)
        node.add_vm(vm)
        self._vm_home[vm.vm_id] = node.level.ratio
        self._mem_used += node.level.physical_mem_for(vm.spec.mem_gb)
        self.driver.create_vm(vm, node.cpu_ids)
        if self.recorder is not None and self.recorder.enabled:
            self.recorder.record_admission(
                AdmissionRecord(
                    vm_id=vm.vm_id,
                    host=self.machine.name,
                    hosted_ratio=node.level.ratio,
                    growth=len(new_cpus),
                    pooled=plan.pooled,
                )
            )
        return Placement(
            vm_id=vm.vm_id,
            hosted_level=node.level,
            sold_level=vm.level,
            new_cpus=tuple(new_cpus),
            pooled=plan.pooled,
        )

    def remove(self, vm_id: str) -> None:
        """Remove a VM, shrink its vNode, destroy it when empty."""
        try:
            ratio = self._vm_home.pop(vm_id)
        except KeyError:
            raise CapacityError(f"VM {vm_id} is not hosted on {self.machine.name}") from None
        node = self._vnodes[ratio]
        hosted = node.remove_vm(vm_id)
        self.driver.destroy_vm(vm_id)
        self._mem_used -= node.level.physical_mem_for(hosted.mem_gb)
        if self._mem_used < CAPACITY_EPSILON:
            self._mem_used = 0.0
        excess = node.num_cpus - node.cpus_required()
        if excess:
            self._alloc.release(node.release_cpus(excess))
            self.pin_generation += 1
            for resident in node.vm_ids:
                self.driver.repin_vm(resident, node.cpu_ids)
        if node.is_empty:
            del self._vnodes[ratio]

    # -- diagnostics ----------------------------------------------------------

    def describe(self) -> dict:
        """A JSON-friendly snapshot of the agent state (control-plane report)."""
        return {
            "machine": self.machine.name,
            "cpus": self.machine.cpus,
            "mem_gb": self.machine.mem_gb,
            "allocated_cpus": self.allocated_cpus,
            "allocated_mem_gb": round(self._mem_used, 6),
            "num_vms": self.num_vms,
            "vnodes": [
                {
                    "id": v.node_id,
                    "level": v.level.name,
                    "cpus": list(v.cpu_ids),
                    "vcpus": v.allocated_vcpus,
                    "capacity_vcpus": v.capacity_vcpus,
                    "mem_gb": round(v.allocated_mem, 6),
                    "vms": list(v.vm_ids),
                }
                for v in self._vnodes.values()
            ],
        }
