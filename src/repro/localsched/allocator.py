"""Topology-driven CPU selection for vNodes (paper §V-A).

The allocator owns the PM's pool of free logical CPUs and answers two
questions:

* **grow** — which free CPUs should extend an existing vNode?  The
  closest ones (Algorithm 1 distance) to the vNode's current CPUs, so
  sibling threads and same-LLC cores are integrated gradually.
* **seed** — where should a brand-new vNode start?  As far as possible
  from every CPU already owned by other vNodes, maximizing isolation
  (ideally a separate socket, then a separate LLC group, ...).

With ``topology_aware=False`` the allocator degrades to index-order
picking — the ablation baseline for the topology benches.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import CapacityError, TopologyError
from repro.hardware.topology import Topology

__all__ = ["CoreAllocator"]


class CoreAllocator:
    """Tracks free CPUs of one PM and picks CPUs for vNodes."""

    def __init__(self, topology: Topology, topology_aware: bool = True):
        self._topo = topology
        self._aware = topology_aware
        self._free: set[int] = set(range(topology.num_cpus))
        self._dist = topology.distance_matrix() if topology_aware else None

    @property
    def topology(self) -> Topology:
        return self._topo

    @property
    def num_free(self) -> int:
        return len(self._free)

    @property
    def free_cpus(self) -> frozenset[int]:
        return frozenset(self._free)

    def release(self, cpu_ids: Iterable[int]) -> None:
        ids = list(cpu_ids)
        taken = [c for c in ids if c in self._free]
        if taken:
            raise CapacityError(f"CPUs {taken} are already free")
        self._free.update(ids)

    def _take(self, cpu_ids: list[int]) -> list[int]:
        missing = [c for c in cpu_ids if c not in self._free]
        if missing:
            raise CapacityError(f"CPUs {missing} are not free")
        self._free.difference_update(cpu_ids)
        return cpu_ids

    # -- selection policies ------------------------------------------------

    def pick_grow(self, anchor: Sequence[int], count: int) -> list[int]:
        """Pick ``count`` free CPUs nearest to the ``anchor`` set.

        Greedy: each step takes the free CPU with the smallest distance
        to the (growing) anchor set.  Ties — frequent, since all cores
        of a socket outside the anchor's cache groups are equidistant —
        are broken by *maximizing* the distance to CPUs owned by other
        vNodes, so growth spills into untouched cache groups instead of
        interleaving with (and splitting sibling pairs of) a
        neighbouring vNode.  Remaining ties pick the lowest CPU id for
        determinism.  An empty anchor falls back to :meth:`pick_seed`.
        """
        if count < 0:
            raise TopologyError(f"count must be >= 0, got {count}")
        if count == 0:
            return []
        if count > len(self._free):
            raise CapacityError(
                f"requested {count} CPUs but only {len(self._free)} are free"
            )
        if not anchor:
            return self.pick_seed(count, occupied=())
        if not self._aware:
            chosen = sorted(self._free)[:count]
            return self._take(chosen)

        # Sorted materialization: the lexsort below breaks every tie on
        # cpu id, so selection is order-independent — but the array must
        # still never carry hash order into numpy (lint rule R004).
        free = np.fromiter(sorted(self._free), dtype=int)
        anchor_list = list(anchor)
        others = sorted(
            set(range(self._topo.num_cpus)) - self._free - set(anchor_list)
        )
        # Distance from each free CPU to the nearest anchor CPU, and to
        # the nearest CPU owned by any other vNode.
        best = self._dist[np.ix_(free, anchor_list)].min(axis=1)
        repel = (
            self._dist[np.ix_(free, others)].min(axis=1)
            if others
            else np.zeros(free.size)
        )
        chosen: list[int] = []
        for _ in range(count):
            # Lexicographic (anchor distance asc, other distance desc,
            # cpu id asc) minimum for determinism.
            order = np.lexsort((free, -repel, best))
            idx = order[0]
            cpu = int(free[idx])
            chosen.append(cpu)
            free = np.delete(free, idx)
            best = np.delete(best, idx)
            repel = np.delete(repel, idx)
            if free.size:
                # The new member may bring remaining candidates closer.
                best = np.minimum(best, self._dist[free, cpu])
        return self._take(chosen)

    def pick_seed(self, count: int, occupied: Sequence[int]) -> list[int]:
        """Pick ``count`` free CPUs for a new vNode, far from ``occupied``.

        The first CPU maximizes its distance to every CPU already owned
        by other vNodes; subsequent CPUs are then grown around it
        (nearest-first) so the new vNode is itself compact.
        """
        if count <= 0:
            raise TopologyError(f"count must be >= 1, got {count}")
        if count > len(self._free):
            raise CapacityError(
                f"requested {count} CPUs but only {len(self._free)} are free"
            )
        if not self._aware:
            chosen = sorted(self._free)[:count]
            return self._take(chosen)

        free = np.fromiter(sorted(self._free), dtype=int)
        occ = list(occupied)
        if occ:
            far = self._dist[np.ix_(free, occ)].min(axis=1)
            # Lexicographic (-distance, cpu_id) => farthest, stable ties.
            order = np.lexsort((free, -far))
            first = int(free[order[0]])
        else:
            first = int(free.min())
        self._take([first])
        if count == 1:
            return [first]
        rest = self.pick_grow([first], count - 1)
        return [first, *rest]
