"""SlackVM local scheduler: vNodes, topology-driven allocation, pinning."""

from repro.localsched.agent import DeployPlan, LocalScheduler, Placement
from repro.localsched.allocator import CoreAllocator
from repro.localsched.drivers import (
    DriverOp,
    HypervisorDriver,
    NullDriver,
    RecordingDriver,
)
from repro.localsched.numa_memory import NumaMemoryPlan, NumaMemoryPlanner
from repro.localsched.pinning import (
    PinningPlan,
    VirtualTopology,
    pinning_plan,
    shared_llc_violations,
    virtual_topology,
)
from repro.localsched.vnode import HostedVM, VNode

__all__ = [
    "LocalScheduler",
    "DeployPlan",
    "Placement",
    "CoreAllocator",
    "HypervisorDriver",
    "NullDriver",
    "RecordingDriver",
    "DriverOp",
    "NumaMemoryPlan",
    "NumaMemoryPlanner",
    "VNode",
    "HostedVM",
    "PinningPlan",
    "VirtualTopology",
    "pinning_plan",
    "virtual_topology",
    "shared_llc_violations",
]
