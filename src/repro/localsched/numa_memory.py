"""NUMA-local memory placement (paper §VIII memory-partitioning lead).

The paper's conclusion singles out memory isolation between VM groups
as "a compelling area for further exploration".  This module provides
the first building block: per-NUMA-node memory accounting over a
topology-mode agent, so each vNode's memory is reserved on the nodes
its CPUs live on whenever possible.

The planner is deliberately *advisory*: it mirrors Linux's mbind
preferred-node policy rather than a hard partition — memory spills to
remote nodes when the local ones are full, and the quality of the
outcome is measured (locality share) instead of enforced, matching how
the paper treats memory as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import CapacityError, TopologyError
from repro.localsched.agent import LocalScheduler
from repro.localsched.vnode import VNode

__all__ = ["NumaMemoryPlan", "NumaMemoryPlanner"]


@dataclass(frozen=True)
class NumaMemoryPlan:
    """Memory reservation of one vNode across NUMA nodes (GB per node)."""

    node_id: str
    per_numa_gb: tuple[float, ...]
    local_gb: float  # memory on nodes where the vNode has CPUs
    remote_gb: float

    @property
    def total_gb(self) -> float:
        return self.local_gb + self.remote_gb

    @property
    def locality(self) -> float:
        """Share of the vNode's memory on its own NUMA nodes (1 = all local)."""
        if self.total_gb == 0:
            return 1.0
        return self.local_gb / self.total_gb


class NumaMemoryPlanner:
    """Assign vNode memory to NUMA nodes, local-first.

    Nodes are assumed to split the machine's memory evenly (the common
    symmetric configuration); pass ``node_mem_gb`` for asymmetric
    machines.
    """

    def __init__(self, agent: LocalScheduler, node_mem_gb: list[float] | None = None):
        if agent.topology is None:
            raise TopologyError("NUMA memory planning requires a topology-mode agent")
        self.agent = agent
        self.topology = agent.topology
        n = self.topology.num_numa_nodes
        if node_mem_gb is None:
            self.node_mem = np.full(n, agent.machine.mem_gb / n)
        else:
            if len(node_mem_gb) != n:
                raise TopologyError(
                    f"expected {n} node sizes, got {len(node_mem_gb)}"
                )
            if abs(sum(node_mem_gb) - agent.machine.mem_gb) > 1e-6:
                raise TopologyError(
                    "per-node memory must sum to the machine's memory"
                )
            self.node_mem = np.asarray(node_mem_gb, dtype=float)

    def _vnode_nodes(self, node: VNode) -> set[int]:
        return {self.topology.cpu(c).numa_node for c in node.cpu_ids}

    def plan(self) -> list[NumaMemoryPlan]:
        """Greedy local-first assignment of every vNode's memory.

        vNodes are processed largest-memory-first (the hardest to place
        locally); each fills its own NUMA nodes before spilling to the
        emptiest remote node.
        """
        free = self.node_mem.copy()
        plans: list[NumaMemoryPlan] = []
        vnodes = sorted(
            self.agent.vnodes, key=lambda v: (-v.allocated_mem, v.node_id)
        )
        for node in vnodes:
            demand = node.allocated_mem
            if demand > free.sum() + 1e-9:
                raise CapacityError(
                    f"vNode {node.node_id} needs {demand} GB but only "
                    f"{free.sum():.1f} GB remain across NUMA nodes"
                )
            per_numa = np.zeros_like(free)
            local_nodes = sorted(self._vnode_nodes(node))
            local_gb = 0.0
            for n in local_nodes:
                take = min(demand, free[n])
                per_numa[n] += take
                free[n] -= take
                demand -= take
                local_gb += take
                if demand <= 1e-12:
                    break
            remote_gb = 0.0
            while demand > 1e-12:
                n = int(np.argmax(free))
                if free[n] <= 1e-12:
                    raise CapacityError("NUMA accounting ran out of memory")
                take = min(demand, free[n])
                per_numa[n] += take
                free[n] -= take
                demand -= take
                remote_gb += take
            plans.append(
                NumaMemoryPlan(
                    node_id=node.node_id,
                    per_numa_gb=tuple(float(x) for x in per_numa),
                    local_gb=local_gb,
                    remote_gb=remote_gb,
                )
            )
        return plans

    def locality_share(self) -> float:
        """Memory-weighted locality across all vNodes (1 = fully local)."""
        plans = self.plan()
        total = sum(p.total_gb for p in plans)
        if total == 0:
            return 1.0
        return sum(p.local_gb for p in plans) / total
