"""vNode: a dynamically-sized partition of one PM's resources.

Each vNode owns an exclusive set of logical CPUs and hosts the VMs of a
single oversubscription level (paper §IV/§V).  A vNode at level ``n:1``
with ``k`` CPUs may expose up to ``n * k`` vCPUs; memory is reserved at
``mem_gb / mem_ratio`` (face value in the paper's evaluation, where
memory is never oversubscribed).  The vNode grows and shrinks as VMs
arrive and depart — sizing is always the minimal CPU count that honours
the level's contention guarantee: ``ceil(allocated_vcpus / n)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import CapacityError
from repro.core.types import OversubscriptionLevel, ResourceVector, VMRequest

__all__ = ["HostedVM", "VNode"]


@dataclass(frozen=True, slots=True)
class HostedVM:
    """A VM resident in a vNode.

    ``sold_level`` is the offer the customer bought; it can be looser
    than the vNode's own level when §V-B pooling upgraded the VM into a
    stricter vNode.
    """

    request: VMRequest

    @property
    def vm_id(self) -> str:
        return self.request.vm_id

    @property
    def vcpus(self) -> int:
        return self.request.spec.vcpus

    @property
    def mem_gb(self) -> float:
        return self.request.spec.mem_gb

    @property
    def sold_level(self) -> OversubscriptionLevel:
        return self.request.level


class VNode:
    """One oversubscription level's resource partition on one PM."""

    __slots__ = ("node_id", "level", "_cpus", "_vms", "_vcpus", "_mem")

    def __init__(self, node_id: str, level: OversubscriptionLevel):
        self.node_id = node_id
        self.level = level
        self._cpus: list[int] = []
        self._vms: dict[str, HostedVM] = {}
        self._vcpus = 0
        self._mem = 0.0

    # -- inventory --------------------------------------------------------

    @property
    def cpu_ids(self) -> tuple[int, ...]:
        """Logical CPUs currently owned by this vNode (exclusive)."""
        return tuple(self._cpus)

    @property
    def num_cpus(self) -> int:
        return len(self._cpus)

    @property
    def allocated_vcpus(self) -> int:
        return self._vcpus

    @property
    def allocated_mem(self) -> float:
        """Physical memory reserved (virtual memory / the level's
        memory-oversubscription ratio)."""
        return self._mem

    @property
    def capacity_vcpus(self) -> float:
        """vCPUs this vNode may expose with its current CPU set."""
        return self.level.ratio * len(self._cpus)

    @property
    def vcpu_slack(self) -> float:
        """vCPUs that could still be hosted without growing the CPU set."""
        return self.capacity_vcpus - self._vcpus

    @property
    def is_empty(self) -> bool:
        return not self._vms

    @property
    def vm_ids(self) -> tuple[str, ...]:
        return tuple(self._vms)

    def hosted(self) -> tuple[HostedVM, ...]:
        return tuple(self._vms.values())

    def hosts(self, vm_id: str) -> bool:
        return vm_id in self._vms

    def allocation(self) -> ResourceVector:
        """Physical resources consumed: owned CPUs + hosted memory."""
        return ResourceVector(float(len(self._cpus)), self._mem)

    # -- sizing -----------------------------------------------------------

    def cpus_required(self, extra_vcpus: int = 0) -> int:
        """Minimal CPU count for the current vCPUs plus ``extra_vcpus``."""
        total = self._vcpus + extra_vcpus
        if total == 0:
            return 0
        return math.ceil(total / self.level.ratio)

    def growth_for(self, vm: VMRequest) -> int:
        """Additional CPUs needed to admit ``vm`` (0 if slack suffices)."""
        return max(0, self.cpus_required(vm.spec.vcpus) - len(self._cpus))

    # -- mutation ---------------------------------------------------------

    def extend_cpus(self, cpu_ids: list[int]) -> None:
        overlap = set(cpu_ids) & set(self._cpus)
        if overlap:
            raise CapacityError(f"vNode {self.node_id} already owns CPUs {sorted(overlap)}")
        self._cpus.extend(cpu_ids)

    def release_cpus(self, count: int) -> list[int]:
        """Give back ``count`` CPUs (most recently added first) and return them."""
        if count < 0 or count > len(self._cpus):
            raise CapacityError(
                f"cannot release {count} CPUs from a vNode owning {len(self._cpus)}"
            )
        if count == 0:
            return []
        released = self._cpus[len(self._cpus) - count :]
        del self._cpus[len(self._cpus) - count :]
        if self.cpus_required() > len(self._cpus):
            # Restore before failing: never leave the vNode undersized.
            self._cpus.extend(released)
            raise CapacityError(
                f"releasing {count} CPUs would violate the {self.level.name} guarantee"
            )
        return released

    def add_vm(self, vm: VMRequest) -> HostedVM:
        """Account ``vm`` into this vNode.

        The caller must have grown the CPU set first; admission enforces
        the oversubscription guarantee against the *current* CPU set.
        """
        if vm.vm_id in self._vms:
            raise CapacityError(f"VM {vm.vm_id} already hosted in vNode {self.node_id}")
        if not self.level.satisfies(vm.level):
            raise CapacityError(
                f"vNode level {self.level.name} cannot honour a VM sold at {vm.level.name}"
            )
        if self._vcpus + vm.spec.vcpus > self.capacity_vcpus + 1e-9:
            raise CapacityError(
                f"vNode {self.node_id}: {vm.spec.vcpus} vCPUs exceed slack "
                f"{self.vcpu_slack:.2f} at level {self.level.name}"
            )
        hosted = HostedVM(request=vm)
        self._vms[vm.vm_id] = hosted
        self._vcpus += vm.spec.vcpus
        self._mem += self.level.physical_mem_for(vm.spec.mem_gb)
        return hosted

    def remove_vm(self, vm_id: str) -> HostedVM:
        try:
            hosted = self._vms.pop(vm_id)
        except KeyError:
            raise CapacityError(f"VM {vm_id} not hosted in vNode {self.node_id}") from None
        self._vcpus -= hosted.vcpus
        self._mem -= self.level.physical_mem_for(hosted.mem_gb)
        if not self._vms:
            self._mem = 0.0  # guard against float drift on empty nodes
        return hosted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VNode({self.node_id}, level={self.level.name}, cpus={len(self._cpus)}, "
            f"vcpus={self._vcpus}/{self.capacity_vcpus:g}, mem={self._mem:g}GB)"
        )
