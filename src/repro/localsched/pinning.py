"""Pinning plans and virtual-topology export (paper §V-A).

Every VM in a vNode is pinned to the vNode's *whole* CPU set — on
deployment the pinning of all hosted VMs is extended to the new range,
and the Linux scheduler picks the concrete core inside that range.

:func:`virtual_topology` summarizes how a vNode's CPU set looks from the
inside (sockets, LLC groups, SMT pairs): SlackVM aims for vNodes that
"resemble a CPU model with fewer cores", and the isolation benches
assert on these summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import TopologyError
from repro.hardware.topology import Topology
from repro.localsched.agent import LocalScheduler
from repro.localsched.vnode import VNode

__all__ = ["PinningPlan", "VirtualTopology", "pinning_plan", "virtual_topology", "shared_llc_violations"]


@dataclass(frozen=True, slots=True)
class PinningPlan:
    """vm_id -> logical CPUs the VM's vCPU threads may run on."""

    pins: dict[str, tuple[int, ...]]
    generation: int

    def cpus_of(self, vm_id: str) -> tuple[int, ...]:
        return self.pins[vm_id]


@dataclass(frozen=True, slots=True)
class VirtualTopology:
    """What a vNode's CPU set looks like as a standalone machine."""

    num_cpus: int
    num_physical_cores: int
    num_sockets: int
    num_numa_nodes: int
    num_llc_groups: int
    smt_pairs: int  # physical cores contributing both their threads

    @property
    def smt_active(self) -> bool:
        return self.smt_pairs > 0


def pinning_plan(agent: LocalScheduler) -> PinningPlan:
    """Current pinning of every VM hosted by ``agent``."""
    pins: dict[str, tuple[int, ...]] = {}
    for node in agent.vnodes:
        cpu_set = node.cpu_ids
        for vm_id in node.vm_ids:
            pins[vm_id] = cpu_set
    return PinningPlan(pins=pins, generation=agent.pin_generation)


def virtual_topology(node: VNode, topology: Topology) -> VirtualTopology:
    """Summarize ``node``'s CPU set against the PM topology."""
    cpus = node.cpu_ids
    if not cpus:
        return VirtualTopology(0, 0, 0, 0, 0, 0)
    infos = [topology.cpu(c) for c in cpus]
    phys: dict[int, int] = {}
    for info in infos:
        phys[info.physical_core] = phys.get(info.physical_core, 0) + 1
    llc = {info.cache_ids[-1] for info in infos}
    return VirtualTopology(
        num_cpus=len(cpus),
        num_physical_cores=len(phys),
        num_sockets=len({i.socket for i in infos}),
        num_numa_nodes=len({i.numa_node for i in infos}),
        num_llc_groups=len(llc),
        smt_pairs=sum(1 for n in phys.values() if n > 1),
    )


def shared_llc_violations(agent: LocalScheduler) -> int:
    """Count LLC groups shared between *different* vNodes.

    SlackVM's isolation objective is to avoid sharing low cache levels
    between vNodes; this metric quantifies residual sharing and feeds
    the topology ablation bench.
    """
    if agent.topology is None:
        raise TopologyError("shared_llc_violations requires a topology-mode agent")
    topo = agent.topology
    owners: dict[int, set[str]] = {}
    for node in agent.vnodes:
        for c in node.cpu_ids:
            owners.setdefault(topo.cpu(c).cache_ids[-1], set()).add(node.node_id)
    return sum(1 for who in owners.values() if len(who) > 1)
