"""Plain-text renderers for the paper's tables and figures.

The bench harness prints the same rows/series the paper reports;
these helpers keep that formatting in one place (simple ASCII — no
plotting dependencies are available offline).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.experiments import DistributionOutcome
from repro.workload.distributions import DISTRIBUTIONS

__all__ = [
    "format_table",
    "render_table1",
    "render_table2",
    "render_table4",
    "render_fig2",
    "render_fig3",
    "render_fig4",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Minimal fixed-width table renderer."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_table1(rows: Mapping[str, tuple[float, float]]) -> str:
    """rows: provider -> (mean vCPUs, mean vRAM GB)."""
    return format_table(
        ["Dataset", "mean vCPU", "mean vRAM (GB)"],
        [[name, f"{v:.2f}", f"{m:.2f}"] for name, (v, m) in rows.items()],
    )


def render_table2(rows: Mapping[str, Mapping[float, float]]) -> str:
    """rows: provider -> {oversubscription ratio -> M/C}."""
    levels = sorted(next(iter(rows.values())))
    return format_table(
        ["Oversubscription levels", *[f"{int(r)}:1" for r in levels]],
        [
            [name, *[f"{ratios[r]:.1f}" for r in levels]]
            for name, ratios in rows.items()
        ],
    )


def render_table4(table: Mapping[str, tuple[float, float, float]]) -> str:
    """table: level -> (baseline ms, slackvm ms, ratio)."""
    return format_table(
        ["Oversubscription levels", "Baseline (ms)", "SlackVM (ms)"],
        [
            [name, f"{b:.2f}", f"{s:.2f} (x{x:.2f})"]
            for name, (b, s, x) in table.items()
        ],
    )


def render_fig2(
    quartiles: Mapping[str, Mapping[str, tuple[float, float, float]]]
) -> str:
    """quartiles: scenario -> level -> (q1, median, q3) in ms."""
    rows = []
    for scenario, levels in quartiles.items():
        for level, (q1, q2, q3) in levels.items():
            rows.append([scenario, level, f"{q1:.2f}", f"{q2:.2f}", f"{q3:.2f}"])
    return format_table(
        ["Scenario", "Level", "p90 Q1 (ms)", "p90 median (ms)", "p90 Q3 (ms)"], rows
    )


def render_fig3(outcomes: Mapping[str, DistributionOutcome]) -> str:
    """Unallocated CPU/memory shares, baseline vs SlackVM, per mix."""
    rows = []
    for label, o in outcomes.items():
        s1, s2, s3 = o.mix
        rows.append(
            [
                label,
                f"{s1:.0f}/{s2:.0f}/{s3:.0f}",
                f"{o.baseline_unallocated.cpu * 100:.1f}",
                f"{o.baseline_unallocated.mem * 100:.1f}",
                f"{o.slackvm_unallocated.cpu * 100:.1f}",
                f"{o.slackvm_unallocated.mem * 100:.1f}",
            ]
        )
    return format_table(
        [
            "Dist",
            "1:1/2:1/3:1 (%)",
            "base CPU unalloc (%)",
            "base MEM unalloc (%)",
            "slack CPU unalloc (%)",
            "slack MEM unalloc (%)",
        ],
        rows,
    )


def render_fig4(savings: Mapping[str, float]) -> str:
    """PM-savings heatmap over (1:1 share, 2:1 share), Fig. 4 layout."""
    shares = sorted({DISTRIBUTIONS[k][0] for k in savings}, reverse=False)
    y_shares = sorted({DISTRIBUTIONS[k][1] for k in savings}, reverse=True)
    by_mix = {DISTRIBUTIONS[k]: v for k, v in savings.items()}
    rows = []
    for s2 in y_shares:
        row = [f"2:1={s2:>3.0f}%"]
        for s1 in shares:
            s3 = 100 - s1 - s2
            if s3 < 0:
                row.append("")
            else:
                v = by_mix.get((float(s1), float(s2), float(s3)))
                row.append("" if v is None else f"{v:.1f}")
        rows.append(row)
    return format_table(["PM saved (%)", *[f"1:1={s:.0f}%" for s in shares]], rows)
