"""§III analysis: allocation ratios and limiting factors (Tables I & II).

Given a provider catalog, computes the average VM request (Table I),
the provisioned M/C ratio at each oversubscription level (Table II),
and classifies which PM resource each level saturates first against a
hardware target ratio (§III-B's CPU-bound / balanced / memory-bound
discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.workload.catalog import Catalog

__all__ = ["LimitingFactor", "table1_row", "table2_row", "limiting_factor", "classify_levels"]

#: Relative band around the target ratio considered "balanced" (§III-B
#: calls OVHcloud's 3.9 vs 4 "balanced" — a ~5 % margin).
BALANCED_MARGIN = 0.05


class LimitingFactor(str, Enum):
    """Which PM resource a workload mix exhausts first."""

    CPU = "cpu-bound"  # workload M/C below the PM ratio: CPUs run out
    MEMORY = "memory-bound"  # workload M/C above the PM ratio: memory runs out
    BALANCED = "balanced"


@dataclass(frozen=True, slots=True)
class Table1Row:
    """Average vCPU & vRAM request per VM for one provider."""

    provider: str
    mean_vcpus: float
    mean_mem_gb: float


@dataclass(frozen=True, slots=True)
class Table2Row:
    """M/C ratios (GB per provisioned core) across oversubscription levels."""

    provider: str
    ratios: dict[float, float]  # oversubscription ratio -> M/C


def table1_row(catalog: Catalog) -> Table1Row:
    return Table1Row(
        provider=catalog.name,
        mean_vcpus=catalog.mean_vcpus,
        mean_mem_gb=catalog.mean_mem_gb,
    )


def table2_row(
    catalog: Catalog, levels: tuple[float, ...] = (1.0, 2.0, 3.0)
) -> Table2Row:
    return Table2Row(
        provider=catalog.name,
        ratios={r: catalog.mc_ratio(r) for r in levels},
    )


def limiting_factor(workload_mc: float, target_mc: float) -> LimitingFactor:
    """Classify a workload M/C ratio against a PM target ratio (§III-B)."""
    if workload_mc < target_mc * (1 - BALANCED_MARGIN):
        return LimitingFactor.CPU
    if workload_mc > target_mc * (1 + BALANCED_MARGIN):
        return LimitingFactor.MEMORY
    return LimitingFactor.BALANCED


def classify_levels(
    catalog: Catalog,
    target_mc: float = 4.0,
    levels: tuple[float, ...] = (1.0, 2.0, 3.0),
) -> dict[float, LimitingFactor]:
    """Limiting factor per oversubscription level for a provider.

    With the paper's 4 GB/core PMs this reproduces §III-B's reading:
    Azure 1:1 and 2:1 are CPU-bound, 3:1 memory-bound; OVHcloud 1:1 is
    CPU-bound, 2:1 balanced, 3:1 memory-bound.
    """
    return {r: limiting_factor(catalog.mc_ratio(r), target_mc) for r in levels}
