"""CSV exporters for the figure data.

The benches print ASCII tables; these helpers additionally serialize
the underlying series as CSV so downstream users can re-plot the
figures with their own tooling (no plotting stack is bundled).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping

from repro.analysis.experiments import DistributionOutcome
from repro.perfmodel.testbed import TestbedResult
from repro.workload.distributions import DISTRIBUTIONS

__all__ = ["export_fig3_csv", "export_fig4_csv", "export_fig2_csv"]


def export_fig3_csv(
    outcomes: Mapping[str, DistributionOutcome], path: str | Path
) -> None:
    """One row per distribution: mix shares + unallocated shares."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        w = csv.writer(fh)
        w.writerow([
            "distribution", "share_1_1", "share_2_1", "share_3_1",
            "baseline_cpu_unallocated", "baseline_mem_unallocated",
            "slackvm_cpu_unallocated", "slackvm_mem_unallocated",
        ])
        for label, o in outcomes.items():
            s1, s2, s3 = o.mix
            w.writerow([
                label, s1, s2, s3,
                f"{o.baseline_unallocated.cpu:.6f}",
                f"{o.baseline_unallocated.mem:.6f}",
                f"{o.slackvm_unallocated.cpu:.6f}",
                f"{o.slackvm_unallocated.mem:.6f}",
            ])


def export_fig4_csv(savings: Mapping[str, float], path: str | Path) -> None:
    """One row per distribution: mix shares + PM savings percent."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        w = csv.writer(fh)
        w.writerow(["distribution", "share_1_1", "share_2_1", "share_3_1",
                    "pm_savings_percent"])
        for label, value in savings.items():
            s1, s2, s3 = DISTRIBUTIONS[label]
            w.writerow([label, s1, s2, s3, f"{value:.4f}"])


def export_fig2_csv(result: TestbedResult, path: str | Path) -> None:
    """One row per (scenario, level) p90 sample — the Fig. 2 raw data."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        w = csv.writer(fh)
        w.writerow(["scenario", "level", "p90_seconds"])
        for scenario, perfs in (("baseline", result.baseline),
                                ("slackvm", result.slackvm)):
            for level, perf in perfs.items():
                for sample in perf.p90s:
                    w.writerow([scenario, level, f"{sample:.9f}"])
