"""Platform-utilization analysis: allocated vs actually-used resources.

The paper's motivation (§I) is the chronically low resource *usage* per
PM: providers allocate conservatively, tenants use a fraction of what
they bought, and oversubscription closes part of that gap.  This module
quantifies the chain for a simulated cluster:

* **allocated share** — physical resources reserved by vNodes (what the
  packing experiments measure);
* **used share** — the CPU the hosted VMs actually demand, integrating
  their usage profiles over their lifetimes;
* **overcommit efficiency** — used / allocated: how much of the
  reservation the oversubscription policy converts into real work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import SimulationError
from repro.core.types import VMRequest
from repro.simulator.engine import SimulationResult
from repro.workload.usage import profile_for

__all__ = ["UtilizationReport", "cluster_utilization"]


@dataclass(frozen=True)
class UtilizationReport:
    """Time-averaged utilization of a simulated cluster."""

    #: Physical CPU reserved by vNodes, as a share of cluster capacity.
    allocated_cpu_share: float
    #: CPU actually demanded by hosted VMs, as a share of capacity.
    used_cpu_share: float
    #: Virtual CPUs exposed, as a share of capacity (>1 == oversubscribed).
    exposed_vcpu_share: float

    @property
    def overcommit_efficiency(self) -> float:
        """Used / allocated: how much reserved CPU does real work."""
        if self.allocated_cpu_share == 0:
            return 0.0
        return self.used_cpu_share / self.allocated_cpu_share


def cluster_utilization(
    workload: Sequence[VMRequest],
    result: SimulationResult,
    samples: int = 168,
) -> UtilizationReport:
    """Measure a placed workload's real CPU usage against the cluster.

    ``samples`` time points are spread over the trace duration (default
    one per hour of a one-week trace); at each point the demand of every
    alive *placed* VM is evaluated from its usage profile.
    """
    if samples < 2:
        raise SimulationError("need at least 2 samples")
    times_arr, alloc_cpu, _mem = result.timeline.as_arrays()
    if len(times_arr) == 0:
        raise SimulationError("simulation produced an empty timeline")
    horizon = float(times_arr[-1])
    if horizon <= 0:
        raise SimulationError("trace horizon must be positive")
    grid = np.linspace(0.0, horizon, samples)

    placed = [vm for vm in workload if vm.vm_id in result.placements]
    profiles = [profile_for(vm.usage_kind, vm.usage_param) for vm in placed]
    arrivals = np.array([vm.arrival for vm in placed])
    departures = np.array(
        [vm.departure if vm.departure is not None else np.inf for vm in placed]
    )
    vcpus = np.array([vm.spec.vcpus for vm in placed], dtype=float)

    used = np.zeros(samples)
    exposed = np.zeros(samples)
    for i, t in enumerate(grid):
        alive = (arrivals <= t) & (t < departures)
        if alive.any():
            demand = np.array(
                [profiles[j].demand(float(t)) for j in np.flatnonzero(alive)]
            )
            used[i] = float((demand * vcpus[alive]).sum())
            exposed[i] = float(vcpus[alive].sum())

    # Allocation timeline is a step function; sample it on the grid.
    idx = np.searchsorted(times_arr, grid, side="right") - 1
    idx = np.clip(idx, 0, len(times_arr) - 1)
    allocated = alloc_cpu[idx]

    cap = result.capacity_cpu
    return UtilizationReport(
        allocated_cpu_share=float(allocated.mean() / cap),
        used_cpu_share=float(used.mean() / cap),
        exposed_vcpu_share=float(exposed.mean() / cap),
    )
