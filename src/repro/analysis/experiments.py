"""At-scale experiment drivers (paper §VII-B, Figures 3 & 4).

For one provider catalog and one oversubscription-level mix, the
protocol is:

1. generate a one-week workload trace targeting 500 concurrent VMs;
2. **baseline** — split the trace per level and size one dedicated
   First-Fit cluster per level (each PM offers a single level);
3. **SlackVM** — size one shared cluster where every PM hosts all
   levels through vNodes and the global scheduler maximizes the
   Algorithm 2 progress score;
4. report PMs saved (Fig. 4) and unallocated CPU/memory shares at each
   cluster's peak (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.config import SlackVMConfig
from repro.core.types import OversubscriptionLevel, VMRequest
from repro.hardware.machine import SIM_WORKER, MachineSpec
from repro.simulator.metrics import (
    UnallocatedShares,
    combine_unallocated,
    pm_savings_percent,
    unallocated_at_peak,
)
from repro.simulator.sizing import minimal_cluster
from repro.workload.catalog import Catalog
from repro.workload.distributions import DISTRIBUTIONS, LevelMix
from repro.workload.generator import WorkloadParams, generate_workload

__all__ = [
    "DistributionOutcome",
    "evaluate_distribution",
    "fig3_series",
    "fig4_grid",
]


@dataclass(frozen=True)
class DistributionOutcome:
    """Baseline-vs-SlackVM comparison for one level mix."""

    provider: str
    mix: LevelMix
    seed: int
    baseline_pms_per_level: dict[float, int]
    slackvm_pms: int
    baseline_unallocated: UnallocatedShares
    slackvm_unallocated: UnallocatedShares
    pooled_placements: int

    @property
    def baseline_pms(self) -> int:
        return sum(self.baseline_pms_per_level.values())

    @property
    def savings_percent(self) -> float:
        return pm_savings_percent(self.baseline_pms, self.slackvm_pms)


def _evaluate_catalog(
    catalog: Catalog,
    mix: LevelMix | str,
    machine: MachineSpec = SIM_WORKER,
    target_population: int = 500,
    seed: int = 0,
    policy: str = "progress",
    pooling: bool = True,
    baseline_policy: str = "first_fit",
    workload: Sequence[VMRequest] | None = None,
    kernel: str = "incremental",
    shards: int = 1,
    router: str = "hash",
    workers: int = 0,
) -> DistributionOutcome:
    """Run the full §VII-B protocol for one (provider, mix) point.

    The shared-cluster search runs on ``kernel`` and, for
    ``shards > 1``, fans each probe out through
    :class:`repro.sharding.ShardedSimulation` (shard count clamped to
    the probed cluster size, since the sizing search explores clusters
    smaller than the requested geometry).  The per-level dedicated
    baselines keep the default engine — they exist to reproduce the
    paper's reference numbers, not to be fast.
    """
    mix_tuple = (
        DISTRIBUTIONS[mix.upper()] if isinstance(mix, str) else tuple(mix)  # type: ignore[arg-type]
    )
    if workload is None:
        params = WorkloadParams(
            catalog=catalog,
            level_mix=mix_tuple,
            target_population=target_population,
            seed=seed,
        )
        workload = generate_workload(params)
    workload = list(workload)

    baseline_pms: dict[float, int] = {}
    baseline_results = []
    # Split per level actually present in the trace (robust to externally
    # supplied workloads whose shares differ from ``mix``).
    present = sorted({vm.level.ratio for vm in workload})
    for ratio in present:
        sub = [vm for vm in workload if vm.level.ratio == ratio]
        cfg = SlackVMConfig(levels=(OversubscriptionLevel(ratio),))
        sized = minimal_cluster(sub, machine, policy=baseline_policy, config=cfg)
        baseline_pms[ratio] = sized.pms
        baseline_results.append(sized.result)

    shared_cfg = SlackVMConfig(
        levels=tuple(OversubscriptionLevel(r) for r in present), pooling=pooling
    )
    simulation_factory = None
    if kernel != "incremental" or shards > 1:
        from repro.sharding.dispatcher import ShardedSimulation

        def simulation_factory(machines: list[MachineSpec]) -> ShardedSimulation:
            return ShardedSimulation(
                machines,
                shared_cfg,
                policy=policy,
                kernel=kernel,
                shards=min(shards, len(machines)),
                router=router,
                workers=workers,
                seed=seed,
            )

    sized_shared = minimal_cluster(
        workload,
        machine,
        policy=policy,
        config=shared_cfg,
        simulation_factory=simulation_factory,
    )

    return DistributionOutcome(
        provider=catalog.name,
        mix=mix_tuple,  # type: ignore[arg-type]
        seed=seed,
        baseline_pms_per_level=baseline_pms,
        slackvm_pms=sized_shared.pms,
        baseline_unallocated=combine_unallocated(baseline_results),
        slackvm_unallocated=unallocated_at_peak(sized_shared.result),
        pooled_placements=sized_shared.result.pooled_placements,
    )


def evaluate_distribution(
    catalog: Catalog,
    mix: LevelMix | str,
    machine: MachineSpec = SIM_WORKER,
    target_population: int = 500,
    seed: int = 0,
    policy: str = "progress",
    pooling: bool = True,
    baseline_policy: str = "first_fit",
    workload: Sequence[VMRequest] | None = None,
) -> DistributionOutcome:
    """Deprecated driver — parse a :class:`repro.api.RunSpec` instead.

    Kept working for one release; delegates to the internal
    :func:`_evaluate_catalog` (identical results).  New code should
    build a spec and call :func:`repro.api.evaluate`.
    """
    import warnings

    warnings.warn(
        "evaluate_distribution() is deprecated; build a repro.api.RunSpec "
        "and call repro.api.evaluate(spec) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _evaluate_catalog(
        catalog,
        mix,
        machine=machine,
        target_population=target_population,
        seed=seed,
        policy=policy,
        pooling=pooling,
        baseline_policy=baseline_policy,
        workload=workload,
    )


def fig3_series(
    catalog: Catalog,
    machine: MachineSpec = SIM_WORKER,
    target_population: int = 500,
    seed: int = 0,
    mixes: Mapping[str, LevelMix] | None = None,
    workers: int = 1,
    **kwargs,
) -> dict[str, DistributionOutcome]:
    """Unallocated-resource comparison across distributions A–O (Fig. 3).

    ``workers > 1`` shards the mixes over a process pool via
    :func:`repro.runner.parallel_fig3_series` — results are
    bit-identical to the serial path for any worker count.
    """
    if workers > 1:
        from repro.runner.figures import parallel_fig3_series

        return parallel_fig3_series(
            catalog,
            machine=machine,
            target_population=target_population,
            seed=seed,
            mixes=mixes,
            workers=workers,
            **kwargs,
        )
    mixes = dict(mixes) if mixes is not None else dict(DISTRIBUTIONS)
    return {
        label: _evaluate_catalog(
            catalog,
            mix,
            machine=machine,
            target_population=target_population,
            seed=seed,
            **kwargs,
        )
        for label, mix in mixes.items()
    }


def fig4_grid(
    catalog: Catalog,
    machine: MachineSpec = SIM_WORKER,
    target_population: int = 500,
    seeds: Sequence[int] = (0,),
    mixes: Mapping[str, LevelMix] | None = None,
    workers: int = 1,
    **kwargs,
) -> dict[str, float]:
    """Mean PM savings (%) per distribution, seed-averaged (Fig. 4).

    ``workers > 1`` shards the (mix, seed) grid over a process pool via
    :func:`repro.runner.parallel_fig4_grid` — results are bit-identical
    to the serial path for any worker count.
    """
    if workers > 1:
        from repro.runner.figures import parallel_fig4_grid

        return parallel_fig4_grid(
            catalog,
            machine=machine,
            target_population=target_population,
            seeds=seeds,
            mixes=mixes,
            workers=workers,
            **kwargs,
        )
    mixes = dict(mixes) if mixes is not None else dict(DISTRIBUTIONS)
    out: dict[str, float] = {}
    for label, mix in mixes.items():
        vals = [
            _evaluate_catalog(
                catalog,
                mix,
                machine=machine,
                target_population=target_population,
                seed=seed,
                **kwargs,
            ).savings_percent
            for seed in seeds
        ]
        out[label] = float(np.mean(vals))
    return out
