"""Paper analysis: ratio tables, experiment drivers, report rendering."""

from repro.analysis.experiments import (
    DistributionOutcome,
    evaluate_distribution,
    fig3_series,
    fig4_grid,
)
from repro.analysis.ratios import (
    LimitingFactor,
    classify_levels,
    limiting_factor,
    table1_row,
    table2_row,
)
from repro.analysis.ascii_charts import boxplot, grouped_hbar, hbar
from repro.analysis.bounds import bfd_snapshot_bound, fractional_bound, peak_alive_set
from repro.analysis.utilization import UtilizationReport, cluster_utilization
from repro.analysis.reporting import (
    format_table,
    render_fig2,
    render_fig3,
    render_fig4,
    render_table1,
    render_table2,
    render_table4,
)

__all__ = [
    "DistributionOutcome",
    "evaluate_distribution",
    "fig3_series",
    "fig4_grid",
    "LimitingFactor",
    "classify_levels",
    "limiting_factor",
    "table1_row",
    "table2_row",
    "format_table",
    "UtilizationReport",
    "cluster_utilization",
    "fractional_bound",
    "bfd_snapshot_bound",
    "peak_alive_set",
    "hbar",
    "grouped_hbar",
    "boxplot",
    "render_table1",
    "render_table2",
    "render_table4",
    "render_fig2",
    "render_fig3",
    "render_fig4",
]
