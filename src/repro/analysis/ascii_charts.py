"""Plain-text chart rendering (no plotting stack is available offline).

Renders the paper's figure *shapes* directly in the terminal:

* :func:`grouped_hbar` — horizontal grouped bars, used for Figure 3's
  unallocated-resource comparison;
* :func:`boxplot` — five-number-summary box plots, used for Figure 2's
  p90 distributions.

Pure-text, deterministic, tested — suitable for bench artifacts and CI
logs.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.errors import ConfigError

__all__ = ["hbar", "grouped_hbar", "boxplot"]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉█"


def _bar(value: float, max_value: float, width: int) -> str:
    """A left-aligned bar of ``width`` cells using eighth-block glyphs."""
    if max_value <= 0:
        return ""
    cells = max(0.0, min(1.0, value / max_value)) * width
    full = int(cells)
    frac = cells - full
    partial = _PART[round(frac * 8)] if full < width else ""
    return _FULL * full + partial.strip()


def hbar(
    rows: Sequence[tuple[str, float]],
    width: int = 40,
    max_value: float | None = None,
    unit: str = "",
) -> str:
    """One labelled bar per row, scaled to the max (or ``max_value``)."""
    if not rows:
        raise ConfigError("hbar needs at least one row")
    if width < 4:
        raise ConfigError("width must be >= 4")
    peak = max_value if max_value is not None else max(v for _, v in rows)
    if peak <= 0:
        peak = 1.0
    label_w = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        lines.append(
            f"{label.ljust(label_w)} |{_bar(value, peak, width).ljust(width)}| "
            f"{value:.1f}{unit}"
        )
    return "\n".join(lines)


def grouped_hbar(
    categories: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Grouped horizontal bars: one block per category, one bar per series."""
    if not categories or not series:
        raise ConfigError("grouped_hbar needs categories and series")
    for name, values in series.items():
        if len(values) != len(categories):
            raise ConfigError(
                f"series {name!r} has {len(values)} values for "
                f"{len(categories)} categories"
            )
    peak = max(max(values) for values in series.values())
    if peak <= 0:
        peak = 1.0
    name_w = max(len(name) for name in series)
    blocks = []
    for i, cat in enumerate(categories):
        lines = [f"{cat}"]
        for name, values in series.items():
            lines.append(
                f"  {name.ljust(name_w)} |{_bar(values[i], peak, width).ljust(width)}| "
                f"{values[i]:.1f}{unit}"
            )
        blocks.append("\n".join(lines))
    return "\n".join(blocks)


def boxplot(
    rows: Mapping[str, tuple[float, float, float, float, float]],
    width: int = 50,
    log: bool = False,
    unit: str = "",
) -> str:
    """Five-number box plots (min, Q1, median, Q3, max) on a shared axis.

    ``log=True`` uses a log10 axis — Figure 2's Y axis is log-scale.
    """
    if not rows:
        raise ConfigError("boxplot needs at least one row")
    if width < 10:
        raise ConfigError("width must be >= 10")
    for label, q in rows.items():
        if len(q) != 5 or any(b < a for a, b in zip(q, q[1:])):
            raise ConfigError(f"row {label!r} is not an ordered 5-number summary")
        if log and q[0] <= 0:
            raise ConfigError("log axis requires positive values")
    lo = min(q[0] for q in rows.values())
    hi = max(q[4] for q in rows.values())
    if hi <= lo:
        hi = lo + 1.0

    def pos(x: float) -> int:
        if log:
            t = (math.log10(x) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))
        else:
            t = (x - lo) / (hi - lo)
        return min(width - 1, max(0, round(t * (width - 1))))

    label_w = max(len(label) for label in rows)
    lines = []
    for label, (mn, q1, med, q3, mx) in rows.items():
        cells = [" "] * width
        for i in range(pos(mn), pos(mx) + 1):
            cells[i] = "-"
        for i in range(pos(q1), pos(q3) + 1):
            cells[i] = "="
        cells[pos(mn)] = "|"
        cells[pos(mx)] = "|"
        cells[pos(med)] = "#"
        lines.append(
            f"{label.ljust(label_w)} {''.join(cells)}  "
            f"(med {med:.2f}{unit})"
        )
    axis = f"{' ' * label_w} {lo:.2f}{unit}{' ' * (width - 12)}{hi:.2f}{unit}"
    scale = "log scale" if log else "linear scale"
    return "\n".join(lines + [axis + f"  [{scale}]"])
