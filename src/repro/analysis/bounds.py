"""Offline packing estimates: how close is the online scheduler to optimal?

The online simulation places VMs in arrival order without migration, so
its minimal cluster is an upper bound on the true optimum.  This module
adds two reference points:

* :func:`fractional_bound` — the resource lower bound (identical to the
  sizing search's floor: peak fractional demand / PM capacity);
* :func:`bfd_snapshot_bound` — Best-Fit-Decreasing vector packing of
  the *peak-time* alive set, the classic offline heuristic [25].  It
  ignores arrival order and lifetimes, so it estimates what an ideal
  (migration-capable) packer could achieve at the binding instant.

EXPERIMENTS.md reports all three for the headline distributions.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import SlackVMConfig
from repro.core.errors import SimulationError
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.localsched.agent import LocalScheduler
from repro.simulator.sizing import demand_lower_bound

__all__ = ["fractional_bound", "peak_alive_set", "bfd_snapshot_bound"]


def fractional_bound(workload: Sequence[VMRequest], machine: MachineSpec) -> int:
    """The sizing search's resource floor (re-exported for symmetry)."""
    return demand_lower_bound(workload, machine)


def peak_alive_set(workload: Sequence[VMRequest]) -> list[VMRequest]:
    """The set of VMs alive at the instant of peak combined demand.

    Peak is measured on fractional physical demand (CPU share + memory
    share would need a machine; the CPU+memory sum in core/GB units is
    scale-free enough for snapshot selection, so we take the instant
    maximizing total fractional CPU + total memory, normalized by their
    own peaks)."""
    if not workload:
        raise SimulationError("empty workload")
    events: list[tuple[float, int, VMRequest]] = []
    for vm in workload:
        events.append((vm.arrival, 1, vm))
        if vm.departure is not None:
            events.append((vm.departure, 0, vm))
    events.sort(key=lambda e: (e[0], e[1]))
    alive: dict[str, VMRequest] = {}
    cpu = mem = 0.0
    # First pass: find per-dimension peaks for normalization.
    peak_cpu = peak_mem = 0.0
    for _, kind, vm in events:
        alloc = vm.allocation()
        if kind == 1:
            cpu += alloc.cpu
            mem += alloc.mem
        else:
            cpu -= alloc.cpu
            mem -= alloc.mem
        peak_cpu = max(peak_cpu, cpu)
        peak_mem = max(peak_mem, mem)
    peak_cpu = peak_cpu or 1.0
    peak_mem = peak_mem or 1.0
    # Second pass: track the argmax snapshot.
    cpu = mem = 0.0
    best_weight = -1.0
    best: list[VMRequest] = []
    for _, kind, vm in events:
        alloc = vm.allocation()
        if kind == 1:
            alive[vm.vm_id] = vm
            cpu += alloc.cpu
            mem += alloc.mem
        else:
            alive.pop(vm.vm_id, None)
            cpu -= alloc.cpu
            mem -= alloc.mem
        weight = cpu / peak_cpu + mem / peak_mem
        if weight > best_weight:
            best_weight = weight
            best = list(alive.values())
    return best


def bfd_snapshot_bound(
    workload: Sequence[VMRequest],
    machine: MachineSpec,
    config: SlackVMConfig | None = None,
) -> int:
    """Best-Fit-Decreasing packing of the peak-time alive set.

    VMs are sorted by decreasing physical footprint (max of their CPU
    and memory shares of the machine — the standard vector-BFD key
    [25]) and placed on the fullest PM that still fits, opening PMs as
    needed.  Returns the PM count: an estimate of what an offline,
    migration-capable packer needs at the binding instant.
    """
    cfg = config or SlackVMConfig()
    snapshot = peak_alive_set(workload)

    def footprint(vm: VMRequest) -> float:
        alloc = vm.allocation()
        return max(alloc.cpu / machine.cpus, alloc.mem / machine.mem_gb)

    hosts: list[LocalScheduler] = []
    for vm in sorted(snapshot, key=lambda v: (-footprint(v), v.vm_id)):
        candidates = [
            (h.allocated_cpus / machine.cpus + h.allocated_mem / machine.mem_gb, i)
            for i, h in enumerate(hosts)
            if h.can_deploy(vm)
        ]
        if candidates:
            _, idx = max(candidates)
            hosts[idx].deploy(vm)
        else:
            host = LocalScheduler(
                MachineSpec(f"bfd-{len(hosts)}", machine.cpus, machine.mem_gb), cfg
            )
            if not host.can_deploy(vm):
                raise SimulationError(
                    f"VM {vm.vm_id} does not fit an empty {machine.name}"
                )
            host.deploy(vm)
            hosts.append(host)
    return len(hosts)
