"""Merge per-shard result streams into one ``SimulationResult``.

Every shard processed a *subsequence* of the global event stream: its
local ``(time, kind, seq)`` order is the global order restricted to its
VMs, because both orders sort by ``(arrival, vm_id)`` first and the
dispatcher's sub-workloads preserve that order.  So shard ``s``'s
``k``-th timeline sample corresponds exactly to the ``k``-th global
event routed to ``s`` — the merge replays the global event list,
advances a cursor into the owning shard's stream, and emits one merged
sample per global event whose allocation is the sum of every shard's
last-known allocation (summed in shard-index order, so the float
reduction is deterministic).

Placements keep the engine's insertion-order contract — admitted VMs in
global arrival order — with local host indices rebased by the owning
shard's block offset; rejections likewise merge in global arrival
order.  That is the layout :func:`repro.simulator.conformance.result_stream`
serializes, so a merged result flows through the existing conformance
machinery unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ShardingError
from repro.simulator.engine import PlacementRecord, SimulationResult, Timeline
from repro.simulator.events import Event, EventKind

__all__ = ["merge_shard_results"]


def merge_shard_results(
    plan: "ShardPlan",  # noqa: F821 — circular-import avoidance
    events: Sequence[Event],
    event_shards: Sequence[int],
    shard_results: Sequence[dict],
) -> SimulationResult:
    """Fold worker result records (dispatcher payload schema) together.

    ``shard_results[s]`` is shard ``s``'s record as returned by
    :func:`repro.sharding.dispatcher._run_shard`; ``event_shards[i]``
    names the shard that owns ``events[i]``.
    """
    shards = plan.shards
    if len(shard_results) != shards:
        raise ShardingError(
            f"expected {shards} shard results, got {len(shard_results)}"
        )
    if len(events) != len(event_shards):
        raise ShardingError(
            f"{len(events)} events but {len(event_shards)} shard assignments"
        )

    placed = [
        {vm_id: (host, ratio, pooled) for vm_id, host, ratio, pooled in r["placements"]}
        for r in shard_results
    ]
    rejected = [set(r["rejections"]) for r in shard_results]

    placements: dict[str, PlacementRecord] = {}
    rejections: list[str] = []
    timeline = Timeline()
    cursors = [0] * shards
    last_cpu = [0.0] * shards
    last_mem = [0.0] * shards

    for ev, shard in zip(events, event_shards):
        r = shard_results[shard]
        k = cursors[shard]
        if k >= len(r["times"]):
            raise ShardingError(
                f"shard {shard} produced {len(r['times'])} timeline samples "
                f"but owns more global events — shard stream is truncated"
            )
        if r["times"][k] != ev.time:
            raise ShardingError(
                f"shard {shard} sample {k} is at t={r['times'][k]} but the "
                f"global event it answers is at t={ev.time}"
            )
        cursors[shard] = k + 1
        last_cpu[shard] = r["alloc_cpu"][k]
        last_mem[shard] = r["alloc_mem"][k]
        cpu = 0.0
        mem = 0.0
        for s in range(shards):
            cpu += last_cpu[s]
            mem += last_mem[s]
        timeline.record(ev.time, cpu, mem)

        if ev.kind is EventKind.ARRIVAL:
            row = placed[shard].get(ev.vm.vm_id)
            if row is not None:
                host, ratio, pooled = row
                placements[ev.vm.vm_id] = PlacementRecord(
                    vm_id=ev.vm.vm_id,
                    host=plan.offsets[shard] + host,
                    hosted_ratio=ratio,
                    pooled=pooled,
                )
            elif ev.vm.vm_id in rejected[shard]:
                rejections.append(ev.vm.vm_id)
            else:
                raise ShardingError(
                    f"shard {shard} neither placed nor rejected VM "
                    f"{ev.vm.vm_id!r}"
                )

    for s in range(shards):
        if cursors[s] != len(shard_results[s]["times"]):
            raise ShardingError(
                f"shard {s} produced {len(shard_results[s]['times'])} samples "
                f"but only {cursors[s]} global events were routed to it"
            )

    capacity_cpu = 0.0
    capacity_mem = 0.0
    pooled_total = 0
    for s in range(shards):
        capacity_cpu += shard_results[s]["capacity_cpu"]
        capacity_mem += shard_results[s]["capacity_mem"]
        pooled_total += shard_results[s]["pooled"]

    return SimulationResult(
        num_hosts=plan.num_hosts,
        capacity_cpu=capacity_cpu,
        capacity_mem=capacity_mem,
        placements=placements,
        rejections=rejections,
        timeline=timeline,
        pooled_placements=pooled_total,
    )
