"""Two-level sharded simulation: global dispatcher over N vector shards.

The datacenter is partitioned into ``shards`` contiguous host blocks.
A global dispatcher replays the workload's event stream *once*, in the
exact ``(time, kind, seq)`` total order of
:func:`repro.simulator.events.workload_event_list`, routing every
arrival to a shard through a :mod:`repro.sharding.router` policy.  Each
shard then runs its sub-workload through an ordinary
:class:`~repro.simulator.vectorpool.VectorSimulation` — the existing
``kernel=`` seam unchanged — in its own worker process, and the
dispatcher merges the per-shard result streams back into one
:class:`~repro.simulator.engine.SimulationResult`
(:mod:`repro.sharding.merge`).

Determinism argument (docs/ARCHITECTURE.md §14): routing happens
*before* any worker starts and is a pure function of ``(plan, workload)``
— the routers never see wall-clock, worker scheduling, or process
count.  Each shard's sub-workload is therefore fixed up front, each
shard is itself deterministic, and the merge walks the global event
order again, so the merged stream is a pure function of the plan and
the workload regardless of ``workers`` or completion order.

``shards=1`` bypasses the worker machinery entirely and returns the
underlying :class:`VectorSimulation` result verbatim — that is the
byte-identity contract against the golden decision corpus.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import SlackVMConfig
from repro.core.errors import ConfigError, ShardingError
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.obs import names as metric_names
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.records import NULL_RECORDER, DecisionRecorder
from repro.oversub.controller import OversubParams
from repro.runner.spec import derive_seeds
from repro.sharding.merge import merge_shard_results
from repro.sharding.router import ROUTERS, make_router
from repro.simulator.engine import SimulationResult
from repro.simulator.events import EventKind, workload_event_list
from repro.simulator.vectorpool import KERNELS, POLICIES, VectorSimulation
from repro.workload.traces import vm_from_dict, vm_to_dict

__all__ = ["ShardPlan", "ShardedSimulation", "workload_digest"]


def workload_digest(workload: Sequence[VMRequest]) -> str:
    """Order-insensitive fingerprint of a workload trace.

    VMs are hashed in the canonical ``(arrival, vm_id)`` event order so
    the digest identifies the *trace*, not the incidental list order a
    caller happened to build it in.
    """
    digest = hashlib.sha256()
    for vm in sorted(workload, key=lambda v: (v.arrival, v.vm_id)):
        row = json.dumps(vm_to_dict(vm), sort_keys=True, separators=(",", ":"))
        digest.update(row.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """The frozen geometry + policy tuple a sharded run is a function of.

    ``sizes``/``offsets`` describe the contiguous host blocks: shard
    ``s`` owns global hosts ``offsets[s] .. offsets[s] + sizes[s] - 1``.
    Blocks are balanced to within one host, remainder to the lowest
    shard indices.
    """

    num_hosts: int
    shards: int
    sizes: tuple[int, ...]
    offsets: tuple[int, ...]
    router: str
    seed: int
    policy: str
    kernel: str

    @classmethod
    def build(
        cls,
        num_hosts: int,
        shards: int,
        router: str = "hash",
        seed: int = 0,
        policy: str = "progress",
        kernel: str = "pruned",
    ) -> "ShardPlan":
        if shards < 1:
            raise ConfigError(f"need at least one shard, got {shards}")
        if num_hosts < shards:
            raise ConfigError(
                f"cannot split {num_hosts} hosts into {shards} shards"
            )
        if router not in ROUTERS:
            raise ConfigError(
                f"unknown router {router!r}; expected one of {ROUTERS}"
            )
        if policy not in POLICIES:
            raise ConfigError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        if kernel not in KERNELS:
            raise ConfigError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        base, extra = divmod(num_hosts, shards)
        sizes = tuple(base + (1 if s < extra else 0) for s in range(shards))
        offsets = []
        at = 0
        for size in sizes:
            offsets.append(at)
            at += size
        return cls(
            num_hosts=num_hosts,
            shards=shards,
            sizes=sizes,
            offsets=tuple(offsets),
            router=router,
            seed=seed,
            policy=policy,
            kernel=kernel,
        )

    def block(self, shard: int) -> slice:
        """Global host-index slice owned by ``shard``."""
        return slice(self.offsets[shard], self.offsets[shard] + self.sizes[shard])

    def to_dict(self) -> dict:
        return {
            "num_hosts": self.num_hosts,
            "shards": self.shards,
            "sizes": list(self.sizes),
            "offsets": list(self.offsets),
            "router": self.router,
            "seed": self.seed,
            "policy": self.policy,
            "kernel": self.kernel,
        }

    def fingerprint(self, workload: str = "") -> str:
        """Stable hex fingerprint; salts in a workload digest when given.

        Keys the shard checkpoint header: a checkpoint resumed against
        a different plan *or* a different trace must be refused.
        """
        body = {"plan": self.to_dict(), "workload": workload}
        canon = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def _config_payload(config: SlackVMConfig) -> dict:
    return {
        "levels": [[lv.ratio, lv.mem_ratio] for lv in config.levels],
        "pooling": config.pooling,
        "negative_progress_factor": config.negative_progress_factor,
        "topology_aware": config.topology_aware,
        "prefer_physical_cores": config.prefer_physical_cores,
    }


def _config_from_payload(payload: dict) -> SlackVMConfig:
    from repro.core.types import OversubscriptionLevel

    return SlackVMConfig(
        levels=tuple(
            OversubscriptionLevel(ratio, mem_ratio)
            for ratio, mem_ratio in payload["levels"]
        ),
        pooling=payload["pooling"],
        negative_progress_factor=payload["negative_progress_factor"],
        topology_aware=payload["topology_aware"],
        prefer_physical_cores=payload["prefer_physical_cores"],
    )


def _run_shard(payload: dict) -> dict:
    """Execute one shard's sub-workload; module-level for pickling.

    Same JSON-primitive payload discipline as
    :func:`repro.runner.runner._run_cell`: everything crossing the
    process boundary (both ways) is built from JSON scalars and
    containers, so the serial path *is* the parallel path minus the
    pool, and results round-trip losslessly through the JSONL
    checkpoint (``json`` renders floats with ``repr``, which parses
    back bit-identical).  Worker faults are captured and returned as a
    record — the dispatcher re-raises in the parent with the shard
    traceback attached.
    """
    try:
        machines = [
            MachineSpec(name=name, cpus=cpus, mem_gb=mem_gb)
            for name, cpus, mem_gb in payload["machines"]
        ]
        config = _config_from_payload(payload["config"])
        workload = [vm_from_dict(row) for row in payload["workload"]]
        sim = VectorSimulation(
            machines,
            config,
            policy=payload["policy"],
            kernel=payload["kernel"],
        )
        started = time.perf_counter()
        result = sim.run(workload)
        wall_s = time.perf_counter() - started
        return {
            "ok": True,
            "shard": payload["shard"],
            "seed": payload["seed"],
            "num_hosts": result.num_hosts,
            "capacity_cpu": result.capacity_cpu,
            "capacity_mem": result.capacity_mem,
            "placements": [
                [rec.vm_id, rec.host, rec.hosted_ratio, rec.pooled]
                for rec in result.placements.values()
            ],
            "rejections": list(result.rejections),
            "pooled": result.pooled_placements,
            "times": result.timeline.times,
            "alloc_cpu": result.timeline.alloc_cpu,
            "alloc_mem": result.timeline.alloc_mem,
            "wall_s": wall_s,
        }
    except Exception as exc:  # noqa: BLE001 — fault capture, re-raised in parent
        import traceback

        return {
            "ok": False,
            "shard": payload["shard"],
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        }


class ShardedSimulation:
    """Dispatcher + N vector-engine shards behind the ``run()`` seam.

    Constructor mirrors :class:`VectorSimulation` plus the sharding
    knobs; ``shards=1`` delegates to a single in-process
    :class:`VectorSimulation` (byte-identical to the unsharded engine,
    and the only mode that supports ``fail_fast``, ``oversub`` and
    decision recording — all three are global-state features that are
    ill-defined across independent shards).

    ``workers`` bounds the process pool; ``0`` means one worker per
    shard, ``1`` runs every shard inline (no pool — the debugging and
    property-test path).  ``checkpoint`` names a JSONL file written
    through :class:`repro.sharding.checkpoint.ShardCheckpoint`;
    ``resume=True`` skips shards that file already holds.
    """

    def __init__(
        self,
        machines: Sequence[MachineSpec],
        config: Optional[SlackVMConfig] = None,
        policy: str = "progress",
        kernel: str = "pruned",
        shards: int = 1,
        router: str = "hash",
        workers: int = 0,
        seed: int = 0,
        fail_fast: bool = False,
        recorder: DecisionRecorder = NULL_RECORDER,
        metrics: MetricsRegistry = NULL_METRICS,
        oversub: Optional[OversubParams] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
    ):
        if shards > 1:
            if fail_fast:
                raise ConfigError(
                    "fail_fast is ill-defined across shards (a rejection in "
                    "one shard cannot halt the others mid-stream); use shards=1"
                )
            if oversub is not None:
                raise ConfigError(
                    "dynamic oversubscription is a global control loop; "
                    "it is not supported with shards > 1"
                )
            if recorder.enabled:
                raise ConfigError(
                    "decision recording crosses the process boundary only "
                    "for shards=1"
                )
        self.machines = list(machines)
        self.config = config or SlackVMConfig()
        self.policy = policy
        self.kernel = kernel
        self.shards = shards
        self.router = router
        self.workers = workers
        self.seed = seed
        self.fail_fast = fail_fast
        self.recorder = recorder
        self.metrics = metrics
        self.oversub = oversub
        self.checkpoint = checkpoint
        self.resume = resume
        #: Per-shard worker wall seconds of the last ``run()``, indexed
        #: by shard; empty for ``shards=1`` (no worker ran).  The max is
        #: the run's critical path — what wall-clock converges to when
        #: every shard gets its own core.
        self.shard_walls: tuple[float, ...] = ()
        # Validates geometry, router, policy and kernel eagerly.
        self.plan = ShardPlan.build(
            num_hosts=len(self.machines),
            shards=shards,
            router=router,
            seed=seed,
            policy=policy,
            kernel=kernel,
        )

    # -- routing -------------------------------------------------------------

    def _route(
        self, workload: list[VMRequest]
    ) -> tuple[list, list[int], list[list[VMRequest]]]:
        """Assign every event to a shard by replaying the global stream.

        Returns ``(events, event_shards, sub_workloads)`` where
        ``event_shards[i]`` owns ``events[i]`` and ``sub_workloads[s]``
        lists shard ``s``'s VMs in global arrival order.  Pure function
        of ``(plan, workload)`` — see the module docstring.
        """
        caps_cpu = [
            float(sum(m.cpus for m in self.machines[self.plan.block(s)]))
            for s in range(self.shards)
        ]
        caps_mem = [
            float(sum(m.mem_gb for m in self.machines[self.plan.block(s)]))
            for s in range(self.shards)
        ]
        router = make_router(
            self.router,
            self.shards,
            seed=self.seed,
            shard_cap_cpu=caps_cpu,
            shard_cap_mem=caps_mem,
        )
        events = workload_event_list(workload)
        assignment: dict[str, int] = {}
        event_shards: list[int] = []
        sub: list[list[VMRequest]] = [[] for _ in range(self.shards)]
        for ev in events:
            shard = assignment.get(ev.vm.vm_id)
            if shard is None:
                # First sighting routes the VM.  Normally that is its
                # ARRIVAL; a zero-lifetime VM's DEPARTURE sorts first
                # (departures precede arrivals at equal timestamps) and
                # routes it early so both events land on one shard.
                shard = router.route(ev.vm)
                assignment[ev.vm.vm_id] = shard
                sub[shard].append(ev.vm)
            elif ev.kind is EventKind.DEPARTURE:
                router.release(ev.vm, shard)
            event_shards.append(shard)
        return events, event_shards, sub

    # -- execution -----------------------------------------------------------

    def run(self, workload: list[VMRequest]) -> SimulationResult:
        if self.shards == 1:
            self.metrics.gauge(metric_names.SHARD_COUNT).set(1)
            sim = VectorSimulation(
                self.machines,
                self.config,
                policy=self.policy,
                fail_fast=self.fail_fast,
                recorder=self.recorder,
                metrics=self.metrics,
                kernel=self.kernel,
                oversub=self.oversub,
            )
            return sim.run(workload)

        events, event_shards, sub = self._route(workload)
        measuring = self.metrics.enabled
        if measuring:
            self.metrics.gauge(metric_names.SHARD_COUNT).set(self.shards)
            self.metrics.counter(metric_names.SHARD_ROUTED).inc(
                sum(1 for ev in events if ev.kind is EventKind.ARRIVAL)
            )
            counts = [len(vms) for vms in sub]
            for count in counts:
                self.metrics.histogram(metric_names.SHARD_QUEUE_DEPTH).observe(count)
            mean = sum(counts) / len(counts)
            self.metrics.gauge(metric_names.SHARD_IMBALANCE).set(
                max(counts) / mean if mean > 0 else 0.0
            )

        seeds = derive_seeds(self.seed, self.shards)
        payloads = [
            {
                "shard": s,
                "seed": seeds[s],
                "policy": self.policy,
                "kernel": self.kernel,
                "config": _config_payload(self.config),
                "machines": [
                    [m.name, m.cpus, m.mem_gb]
                    for m in self.machines[self.plan.block(s)]
                ],
                "workload": [vm_to_dict(vm) for vm in sub[s]],
            }
            for s in range(self.shards)
        ]

        results = self._execute(payloads, workload)

        self.shard_walls = tuple(record["wall_s"] for record in results)
        if measuring:
            for record in results:
                self.metrics.timer(metric_names.SHARD_WALL_S).observe(record["wall_s"])
        merge_started = time.perf_counter()
        merged = merge_shard_results(self.plan, events, event_shards, results)
        if measuring:
            self.metrics.timer(metric_names.SHARD_MERGE_S).observe(
                time.perf_counter() - merge_started
            )
        return merged

    def _execute(
        self, payloads: list[dict], workload: list[VMRequest]
    ) -> list[dict]:
        """Run shard payloads, via pool or inline, returning by index."""
        from repro.sharding.checkpoint import ShardCheckpoint

        results: dict[int, dict] = {}
        ckpt: Optional[ShardCheckpoint] = None
        if self.checkpoint is not None:
            ckpt = ShardCheckpoint(self.checkpoint)
            fingerprint = self.plan.fingerprint(workload_digest(workload))
            results = ckpt.start(self.plan, fingerprint, resume=self.resume)

        pending = [p for p in payloads if p["shard"] not in results]
        try:
            workers = self.workers if self.workers > 0 else len(pending)
            if workers <= 1 or len(pending) <= 1:
                for payload in pending:
                    record = _run_shard(payload)
                    self._harvest(record, results, ckpt)
            else:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(pending))
                ) as pool:
                    futures = [pool.submit(_run_shard, p) for p in pending]
                    for future in as_completed(futures):
                        self._harvest(future.result(), results, ckpt)
        finally:
            if ckpt is not None:
                ckpt.close()
        return [results[s] for s in range(self.shards)]

    def _harvest(
        self,
        record: dict,
        results: dict[int, dict],
        ckpt: Optional["ShardCheckpoint"],  # noqa: F821 — deferred import
    ) -> None:
        if not record.get("ok"):
            error = record.get("error", {})
            raise ShardingError(
                f"shard {record.get('shard')} failed with "
                f"{error.get('type')}: {error.get('message')}\n"
                f"{error.get('traceback', '')}"
            )
        results[record["shard"]] = record
        if ckpt is not None:
            # wall_s is operator telemetry; shard resume keys on the
            # payload fingerprint and never reads it.
            ckpt.append(record)  # reprolint: disable=R013
