"""Sharded million-VM simulation (ROADMAP item 3).

A global dispatcher partitions the datacenter into contiguous host
blocks, routes every arrival to a shard (:mod:`repro.sharding.router`),
runs each shard's sub-workload through the vector engine in a worker
process (:mod:`repro.sharding.dispatcher`), and merges the per-shard
result streams back into one ``SimulationResult``
(:mod:`repro.sharding.merge`).  ``shards=1`` is byte-identical to the
unsharded engine — the golden-corpus contract the conformance suite
pins.
"""

from repro.sharding.checkpoint import ShardCheckpoint
from repro.sharding.dispatcher import ShardedSimulation, ShardPlan, workload_digest
from repro.sharding.router import ROUTERS, HashRouter, ScoreRouter, make_router

__all__ = [
    "ROUTERS",
    "HashRouter",
    "ScoreRouter",
    "make_router",
    "ShardPlan",
    "ShardedSimulation",
    "ShardCheckpoint",
    "workload_digest",
]
