"""Append-only JSONL checkpoints for sharded runs, with resume.

Same file discipline as :class:`repro.runner.checkpoint.SweepCheckpoint`:

* line 1 — header: ``{"kind": "header", "fingerprint": ..., "plan":
  {...}, "version": 1}``, where the fingerprint is
  :meth:`ShardPlan.fingerprint` salted with the workload digest — a
  checkpoint resumed against a different plan *or* trace is refused;
* then one ``{"kind": "shard", ...}`` record per *completed* shard
  (the :func:`~repro.sharding.dispatcher._run_shard` result payload),
  flushed on completion, in completion order.

Floats survive the JSON round trip bit-identically (``json`` emits
``repr`` and parses it back exactly), so a resumed merge is
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, TextIO

from repro.core.errors import ShardingError

if TYPE_CHECKING:
    from repro.sharding.dispatcher import ShardPlan

__all__ = ["ShardCheckpoint"]


def _canon(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class ShardCheckpoint:
    """One sharded run's JSONL result file (writer + resume loader)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: Optional[TextIO] = None

    # -- writing -------------------------------------------------------------

    def start(
        self, plan: "ShardPlan", fingerprint: str, resume: bool = False
    ) -> dict[int, dict]:
        """Open the checkpoint and return already-completed shard records.

        With ``resume=False`` any existing file is truncated and a
        fresh header written.  With ``resume=True`` an existing file is
        validated against ``fingerprint`` and its shard records
        returned; a missing file degrades to a fresh start.
        """
        done: dict[int, dict] = {}
        if resume and self.path.exists():
            done = self.load(fingerprint)
            self._fh = self.path.open("a", encoding="utf-8")
            return done
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        header = {
            "kind": "header",
            "version": 1,
            "fingerprint": fingerprint,
            "plan": plan.to_dict(),
        }
        self._fh.write(_canon(header) + "\n")
        self._fh.flush()
        return done

    def append(self, record: dict) -> None:
        if self._fh is None:
            raise ShardingError("checkpoint not started")
        self._fh.write(_canon({"kind": "shard", **record}) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ShardCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------------

    def load(self, fingerprint: Optional[str] = None) -> dict[int, dict]:
        """Parse the file into ``{shard index: last record}``.

        When ``fingerprint`` is given the header must match.  Truncated
        trailing lines (a killed writer) are tolerated and dropped.
        """
        if not self.path.exists():
            raise ShardingError(f"no shard checkpoint at {self.path}")
        records: dict[int, dict] = {}
        header = None
        with self.path.open("r", encoding="utf-8") as fh:
            for i, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A kill mid-write leaves at most one torn last line.
                    continue
                kind = record.get("kind")
                if i == 0:
                    if kind != "header":
                        raise ShardingError(
                            f"{self.path} is not a shard checkpoint (no header)"
                        )
                    header = record
                    continue
                if kind == "shard" and record.get("ok"):
                    records[int(record["shard"])] = record
        if header is None:
            raise ShardingError(f"{self.path} is empty")
        if fingerprint is not None and header.get("fingerprint") != fingerprint:
            raise ShardingError(
                f"checkpoint {self.path} was produced by a different plan or "
                f"workload (fingerprint {header.get('fingerprint')} != "
                f"{fingerprint}); refusing to resume"
            )
        return records
