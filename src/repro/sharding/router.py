"""Dispatcher routing policies: which shard hosts an arriving VM.

A router is a *pure, deterministic* function of ``(routing seed, shard
geometry, the arrival stream so far)`` — never of wall-clock, worker
scheduling, or process count.  That is the property the whole sharding
determinism argument rests on (docs/ARCHITECTURE.md §14): the
dispatcher computes every assignment before any worker starts, so the
shard sub-workloads — and therefore every shard's result stream — are
a pure function of the :class:`~repro.sharding.dispatcher.ShardPlan`.

Two policies, mirroring ROADMAP item 3:

* ``hash`` — consistent hashing over the VM id on a virtual-node ring
  (:class:`HashRouter`).  Stateless, so a VM's shard never depends on
  the VMs around it; the ring is salted with the routing seed.
* ``score`` — shard-level aggregate M/C score routing
  (:class:`ScoreRouter`).  The dispatcher tracks each shard's
  outstanding physical demand (the same ``vm.allocation()`` accounting
  as :func:`repro.simulator.sizing.demand_lower_bound`) and sends each
  arrival to the shard whose aggregate M/C ratio lands closest to its
  capacity target — the paper's Algorithm 2 incentive, lifted from
  hosts to shards.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Sequence

from repro.core.errors import ConfigError
from repro.core.types import VMRequest

__all__ = ["ROUTERS", "HashRouter", "ScoreRouter", "make_router", "stable_hash_64"]

#: Registered routing policies (``repro shard --router``).
ROUTERS = ("hash", "score")

#: Virtual nodes per shard on the consistent-hash ring.  Enough to keep
#: the expected per-shard share within a few percent of uniform.
_RING_REPLICAS = 64


def stable_hash_64(text: str) -> int:
    """64-bit stable hash of a string (SHA-256 prefix).

    Independent of ``PYTHONHASHSEED`` and identical across processes
    and platforms — the property Python's builtin ``hash`` explicitly
    does not provide.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRouter:
    """Consistent hashing over VM ids on a seeded virtual-node ring.

    Each shard owns :data:`_RING_REPLICAS` points on a 64-bit ring;
    a VM goes to the owner of the first point at or after its own
    hash.  Routing is stateless — ``route`` is a pure function of
    ``(seed, shards, vm_id)`` — and changing the shard count moves
    only ~``1/shards`` of the keys (the consistent-hashing property).
    """

    name = "hash"

    def __init__(self, shards: int, seed: int = 0):
        if shards < 1:
            raise ConfigError(f"need at least one shard, got {shards}")
        self.shards = shards
        self.seed = seed
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(_RING_REPLICAS):
                points.append(
                    (stable_hash_64(f"{seed}/{shard}/{replica}"), shard)
                )
        points.sort()
        self._ring_keys = [p[0] for p in points]
        self._ring_shards = [p[1] for p in points]

    def route(self, vm: VMRequest) -> int:
        if self.shards == 1:
            return 0
        point = stable_hash_64(vm.vm_id)
        i = bisect_right(self._ring_keys, point)
        if i == len(self._ring_keys):
            i = 0
        return self._ring_shards[i]

    def release(self, vm: VMRequest, shard: int) -> None:
        """Departures carry no state for a stateless router."""


class ScoreRouter:
    """Aggregate M/C score routing over dispatcher-side demand model.

    The dispatcher maintains each shard's outstanding physical demand
    (CPU cores, memory GB — ``vm.allocation()``, the best-packing
    accounting of :func:`~repro.simulator.sizing.demand_lower_bound`)
    by replaying arrivals and departures in global event order.  An
    arrival is scored per shard exactly like the paper's progress
    score, one level up: place it where the aggregate M/C ratio moves
    closest to the shard's capacity target, penalized by relative CPU
    load so a full shard stops attracting VMs.  Lowest shard index
    wins ties, making the routing deterministic and independent of
    worker scheduling.
    """

    name = "score"

    def __init__(
        self,
        shards: int,
        seed: int = 0,
        shard_cap_cpu: Sequence[float] | None = None,
        shard_cap_mem: Sequence[float] | None = None,
    ):
        if shards < 1:
            raise ConfigError(f"need at least one shard, got {shards}")
        if shard_cap_cpu is None or shard_cap_mem is None:
            raise ConfigError("score routing needs per-shard capacities")
        if len(shard_cap_cpu) != shards or len(shard_cap_mem) != shards:
            raise ConfigError(
                f"expected {shards} per-shard capacities, got "
                f"{len(shard_cap_cpu)}/{len(shard_cap_mem)}"
            )
        self.shards = shards
        self.seed = seed
        self._cap_cpu = [float(c) for c in shard_cap_cpu]
        self._cap_mem = [float(m) for m in shard_cap_mem]
        self._demand_cpu = [0.0] * shards
        self._demand_mem = [0.0] * shards

    def route(self, vm: VMRequest) -> int:
        alloc = vm.allocation()
        best = 0
        best_score = -float("inf")
        for shard in range(self.shards):
            cap_c = self._cap_cpu[shard]
            cap_m = self._cap_mem[shard]
            target = cap_m / cap_c
            cpu = self._demand_cpu[shard] + alloc.cpu
            mem = self._demand_mem[shard] + alloc.mem
            deviation = abs(mem / cpu - target) if cpu > 0 else 0.0
            load = cpu / cap_c
            score = -deviation - load
            if score > best_score:
                best_score = score
                best = shard
        self._demand_cpu[best] += alloc.cpu
        self._demand_mem[best] += alloc.mem
        return best

    def release(self, vm: VMRequest, shard: int) -> None:
        alloc = vm.allocation()
        self._demand_cpu[shard] -= alloc.cpu
        self._demand_mem[shard] -= alloc.mem


def make_router(
    name: str,
    shards: int,
    seed: int = 0,
    shard_cap_cpu: Sequence[float] | None = None,
    shard_cap_mem: Sequence[float] | None = None,
) -> "HashRouter | ScoreRouter":
    """Instantiate a registered routing policy by name."""
    if name == "hash":
        return HashRouter(shards, seed=seed)
    if name == "score":
        return ScoreRouter(
            shards,
            seed=seed,
            shard_cap_cpu=shard_cap_cpu,
            shard_cap_mem=shard_cap_mem,
        )
    raise ConfigError(f"unknown router {name!r}; expected one of {ROUTERS}")
