"""``slackvm`` command-line interface.

Exposes the library's main workflows without writing Python:

* ``slackvm tables`` — print the catalog analysis (Tables I & II);
* ``slackvm generate`` — write a workload trace (JSON Lines);
* ``slackvm size`` — minimal-cluster sizing for a trace file;
* ``slackvm evaluate`` — dedicated-vs-SlackVM comparison for one mix;
* ``slackvm sweep`` — Figures 3 & 4 for a provider, optionally sharded
  over a process pool (``--workers``) with JSONL checkpointing and
  resume (``--out`` / ``--resume``); results are bit-identical for any
  worker count;
* ``slackvm shard`` — one workload through the sharded dispatcher
  (N vector-engine shards in worker processes), with optional
  inline-vs-pool byte-identity verification and speedup reporting;
* ``slackvm serve`` — the asyncio online placement service on virtual
  time: open-loop seeded traffic through a bounded admission queue
  into controller shard(s), emitting a JSON SLO report (placement
  latency p50/p99, queue depth, timeout and rejection rates);
* ``slackvm testbed`` — the Table IV / Fig. 2 isolation experiment;
* ``slackvm audit`` — differential replay of one workload through both
  engines (object + vectorized), reporting the first divergence and
  dumping decision records + metrics as JSON;
* ``slackvm bench engine`` — placement-kernel micro-benchmark
  (events/sec vs cluster size, incremental vs naive kernel, every
  policy), optionally checked against a committed baseline
  (``--check BENCH_engine.json``).

Every subcommand is deterministic given ``--seed``.  The same CLI is
installed both as ``slackvm`` and as ``repro`` (and runs via
``python -m repro``).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import (
    render_fig2,
    render_fig3,
    render_fig4,
    render_table1,
    render_table2,
    render_table4,
    table1_row,
    table2_row,
)
from repro.core.errors import ReproError
from repro.hardware import SIM_WORKER, MachineSpec
from repro.simulator import POLICIES, demand_lower_bound, minimal_cluster
from repro.workload import (
    DISTRIBUTIONS,
    PROVIDERS,
    WorkloadParams,
    generate_workload,
    load_trace,
    peak_population,
    save_trace,
)

__all__ = ["main", "build_parser"]


def _machine(text: str) -> MachineSpec:
    """Parse ``CPUS:MEM_GB`` (e.g. ``32:128``) into a machine spec."""
    try:
        cpus, mem = text.split(":")
        return MachineSpec(name="cli-pm", cpus=int(cpus), mem_gb=float(mem))
    except (ValueError, ReproError) as exc:
        raise argparse.ArgumentTypeError(
            f"expected CPUS:MEM_GB (e.g. 32:128), got {text!r}: {exc}"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slackvm",
        description="SlackVM reproduction: pack VMs across oversubscription levels.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print the catalog analysis (Tables I & II)")

    gen = sub.add_parser("generate", help="generate a workload trace (JSONL)")
    gen.add_argument("--provider", choices=sorted(PROVIDERS), default="ovhcloud")
    gen.add_argument("--mix", default="F",
                     help=f"level mix, one of {'/'.join(DISTRIBUTIONS)} "
                          "or S1,S2,S3 percent shares")
    gen.add_argument("--population", type=int, default=500,
                     help="target concurrent VMs (default 500)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True, help="output trace path")

    size = sub.add_parser("size", help="size a minimal cluster for a trace")
    size.add_argument("trace", help="JSONL trace file")
    size.add_argument("--policy", default="progress",
                      help="scheduling policy (default: progress)")
    size.add_argument("--machine", type=_machine, default=SIM_WORKER,
                      help="worker spec as CPUS:MEM_GB (default 32:128)")

    ev = sub.add_parser("evaluate",
                        help="compare dedicated clusters vs SlackVM for one mix")
    ev.add_argument("--provider", choices=sorted(PROVIDERS), default="ovhcloud")
    ev.add_argument("--mix", default="F")
    ev.add_argument("--population", type=int, default=500)
    ev.add_argument("--seed", type=int, default=42)
    ev.add_argument("--policy", default="progress",
                    help="shared-cluster policy (progress, progress_bestfit, "
                         "first_fit, best_fit, worst_fit)")
    ev.add_argument("--kernel", default="incremental",
                    help="placement kernel for the shared cluster "
                         "(incremental, naive, pruned)")
    ev.add_argument("--shards", type=int, default=1,
                    help="fan the shared cluster out over N dispatcher "
                         "shards (default 1: unsharded)")
    ev.add_argument("--router", default="hash",
                    help="shard routing policy (hash, score)")
    ev.add_argument("--machine", type=_machine, default=SIM_WORKER,
                    help="worker spec as CPUS:MEM_GB (default 32:128)")

    sweep = sub.add_parser("sweep", help="run the Fig. 3/4 sweep for a provider")
    sweep.add_argument("--provider", choices=sorted(PROVIDERS), default="ovhcloud")
    sweep.add_argument("--population", type=int, default=250)
    sweep.add_argument("--seed", type=int, default=42)
    sweep.add_argument("--num-seeds", type=int, default=1,
                       help="average Fig. 4 over this many seeds derived "
                            "from --seed via SeedSequence.spawn (default 1: "
                            "use --seed literally)")
    sweep.add_argument("--mixes", default=None,
                       help="comma-separated mix subset (letters A-O, "
                            "'S1,S2,S3' triples need 'label:S1,S2,S3'); "
                            "default: all 15 distributions")
    sweep.add_argument("--workers", type=int, default=1,
                       help="shard cells over this many processes "
                            "(results are bit-identical for any count)")
    sweep.add_argument("--out", default=None,
                       help="JSONL checkpoint path; completed cells are "
                            "appended as they finish")
    sweep.add_argument("--resume", action="store_true",
                       help="skip cells already completed in --out "
                            "(failed cells are retried)")
    sweep.add_argument("--kernel", default="incremental",
                       help="placement kernel for every cell "
                            "(incremental, naive, pruned)")
    sweep.add_argument("--shards", type=int, default=1,
                       help="dispatcher shards per cell (run inline inside "
                            "each cell worker; default 1)")
    sweep.add_argument("--router", default="hash",
                       help="shard routing policy (hash, score)")

    ov = sub.add_parser(
        "oversub",
        help="compare dynamic-oversubscription strategies "
             "(packing gain vs violation risk on a scarce cluster)",
    )
    ov.add_argument("--strategies", default="static,percentile,doa,greedy",
                    help="comma-separated strategy subset "
                         "(static, percentile, doa, greedy)")
    ov.add_argument("--provider", choices=sorted(PROVIDERS), default="azure")
    ov.add_argument("--mixes", default="F",
                    help="comma-separated mixes (letters A-O or "
                         "'label:S1,S2,S3' triples)")
    ov.add_argument("--population", type=int, default=120)
    ov.add_argument("--seed", type=int, default=42)
    ov.add_argument("--num-seeds", type=int, default=1,
                    help="run this many seeds derived from --seed "
                         "(default 1: use --seed literally)")
    ov.add_argument("--scarcity", type=float, default=0.5,
                    help="cluster size as a fraction of the workload's "
                         "demand lower bound (default 0.5: scarce)")
    ov.add_argument("--update-every", type=float, default=3600.0,
                    help="estimator update period, seconds (default 3600)")
    ov.add_argument("--policy", choices=POLICIES, default="progress")
    ov.add_argument("--kernel", choices=("incremental", "naive"),
                    default="incremental")
    ov.add_argument("--machine", type=_machine, default=SIM_WORKER,
                    help="worker spec as CPUS:MEM_GB (default 32:128)")
    ov.add_argument("-o", "--out", default=None,
                    help="write the per-cell results as JSON")

    sh = sub.add_parser(
        "shard",
        help="run one workload through the sharded dispatcher "
             "(N vector-engine shards in worker processes)",
    )
    sh.add_argument("--provider", choices=sorted(PROVIDERS), default="azure")
    sh.add_argument("--mix", default="F",
                    help=f"level mix, one of {'/'.join(DISTRIBUTIONS)} "
                         "or S1,S2,S3 percent shares")
    sh.add_argument("--population", type=int, default=500,
                    help="target concurrent VMs (default 500)")
    sh.add_argument("--seed", type=int, default=42)
    sh.add_argument("--hosts", type=int, default=0,
                    help="cluster size; 0 auto-sizes from the demand "
                         "lower bound with 15%% headroom (default)")
    sh.add_argument("--machine", type=_machine, default=SIM_WORKER,
                    help="host spec as CPUS:MEM_GB (default 32:128)")
    sh.add_argument("--policy", choices=POLICIES, default="progress")
    sh.add_argument("--kernel", default="pruned",
                    help="placement kernel per shard (default pruned)")
    sh.add_argument("--shards", type=int, default=4,
                    help="shard count (default 4)")
    sh.add_argument("--router", default="hash",
                    help="routing policy: hash (consistent hashing over "
                         "VM id) or score (aggregate M/C)")
    sh.add_argument("--workers", type=int, default=0,
                    help="worker processes (default 0: one per shard; "
                         "1 runs every shard inline)")
    sh.add_argument("--trace", default=None,
                    help="replay a JSONL trace instead of generating one")
    sh.add_argument("--checkpoint", default=None,
                    help="JSONL shard checkpoint path")
    sh.add_argument("--resume", action="store_true",
                    help="skip shards already completed in --checkpoint")
    sh.add_argument("--verify", action="store_true",
                    help="re-run every shard inline (workers=1) and fail "
                         "unless the merged streams are byte-identical; "
                         "reports the pool-vs-inline speedup")
    sh.add_argument("--baseline", action="store_true",
                    help="also run the unsharded single-process engine "
                         "and report the sharded speedup over it")

    sv = sub.add_parser(
        "serve",
        help="run the online placement service on virtual time "
             "(open-loop traffic, bounded queue, SLO report)",
    )
    sv.add_argument("--provider", choices=sorted(PROVIDERS), default="azure")
    sv.add_argument("--mix", default="F",
                    help=f"level mix, one of {'/'.join(DISTRIBUTIONS)} "
                         "or S1,S2,S3 percent shares")
    sv.add_argument("--duration", type=float, default=30.0,
                    help="admission window, virtual seconds (default 30)")
    sv.add_argument("--rate", type=float, default=50.0,
                    help="mean arrival rate, requests per virtual second "
                         "(default 50)")
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument("--hosts", type=int, default=0,
                    help="fleet size; 0 auto-sizes from Little's law "
                         "(rate x mean lifetime at the catalog's mean "
                         "footprint, default)")
    sv.add_argument("--machine", type=_machine, default=SIM_WORKER,
                    help="host spec as CPUS:MEM_GB (default 32:128)")
    sv.add_argument("--policy", choices=POLICIES, default="progress")
    sv.add_argument("--shards", type=int, default=1,
                    help="independent controller shards behind the "
                         "hash router (default 1)")
    sv.add_argument("--queue-bound", type=int, default=64,
                    help="admission queue bound; arrivals beyond it are "
                         "rejected (default 64)")
    sv.add_argument("--timeout", type=float, default=5.0,
                    help="request timeout, virtual seconds (default 5)")
    sv.add_argument("--mean-lifetime", type=float, default=20.0,
                    help="mean VM lifetime, virtual seconds (default 20)")
    sv.add_argument("--service-mean", type=float, default=0.005,
                    help="mean per-decision scheduler service time, "
                         "virtual seconds (default 0.005)")
    sv.add_argument("--diurnal", type=float, default=0.0,
                    help="diurnal rate-modulation amplitude in [0,1) "
                         "(default 0: flat)")
    sv.add_argument("--report", default=None,
                    help="write the JSON SLO report (includes the "
                         "decision log) to this path")

    tb = sub.add_parser("testbed",
                        help="run the Table IV / Fig. 2 isolation experiment")
    tb.add_argument("--duration", type=float, default=1800.0)
    tb.add_argument("--seed", type=int, default=2024)

    au = sub.add_parser(
        "audit",
        help="replay one workload through both engines and diff their "
             "placement decisions event-by-event",
    )
    au.add_argument("--policy", choices=POLICIES, default="progress")
    au.add_argument("--provider", choices=sorted(PROVIDERS), default="ovhcloud")
    au.add_argument("--mix", default="F")
    au.add_argument("--vms", type=int, default=500,
                    help="target concurrent VMs of the generated workload")
    au.add_argument("--seed", type=int, default=7)
    au.add_argument("--pms", type=int, default=0,
                    help="cluster size; 0 sizes it from the demand lower "
                         "bound with 15%% headroom")
    au.add_argument("--machine", type=_machine, default=SIM_WORKER,
                    help="worker spec as CPUS:MEM_GB (default 32:128)")
    au.add_argument("-o", "--output", default="slackvm_audit.json",
                    help="JSON dump path (metrics + decision records)")
    au.add_argument("--no-decisions", action="store_true",
                    help="omit the per-arrival decision records from the dump")

    be = sub.add_parser(
        "bench",
        help="micro-benchmark the engines (currently: the placement kernel)",
    )
    be.add_argument("target", choices=("engine",),
                    help="what to benchmark (engine: pruned/incremental vs "
                         "naive placement kernels)")
    be.add_argument("--hosts", default="500,2000,5000",
                    help="comma-separated cluster sizes (default 500,2000,5000)")
    be.add_argument("--policies", default="all",
                    help="comma-separated policy subset, or 'all' (default)")
    be.add_argument("--provider", choices=sorted(PROVIDERS), default="azure")
    be.add_argument("--seed", type=int, default=7)
    be.add_argument("--vms-per-host", type=float, default=4.0,
                    help="workload target population per host (default 4)")
    be.add_argument("--machine", type=_machine, default=_machine("48:192"),
                    help="host spec as CPUS:MEM_GB (default 48:192)")
    be.add_argument("--scale-hosts", default="",
                    help="comma-separated datacenter-scale cluster sizes "
                         "(e.g. 50000,100000; default: none)")
    be.add_argument("--scale-policies", default="first_fit,best_fit,progress",
                    help="policy subset for the scale tier "
                         "(default first_fit,best_fit,progress)")
    be.add_argument("--scale-vms-per-host", type=float, default=0.5,
                    help="workload target population per host for scale "
                         "cells (default 0.5, keeps the naive arm tractable)")
    be.add_argument("--scale-warmup-vms", type=int, default=200,
                    help="warmup slice for scale cells (default 200)")
    be.add_argument("--shard-hosts", default="",
                    help="comma-separated cluster sizes for the shard tier "
                         "(sharded dispatcher vs serial pruned kernel; "
                         "default: none)")
    be.add_argument("--shard-counts", default="4",
                    help="comma-separated shard counts for shard-tier cells "
                         "(default 4)")
    be.add_argument("--shard-policies", default="progress",
                    help="policy subset for the shard tier (default progress)")
    be.add_argument("--shard-vms-per-host", type=float, default=0.5,
                    help="workload target population per host for shard "
                         "cells (default 0.5)")
    be.add_argument("--no-verify", action="store_true",
                    help="skip the kernel-equality check on each cell")
    be.add_argument("-o", "--out", default=None,
                    help="write the JSON results (e.g. BENCH_engine.json)")
    be.add_argument("--check", default=None,
                    help="baseline JSON to compare speedups against "
                         "(exit 1 when a cell falls below it)")
    be.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed fractional speedup regression vs the "
                         "baseline (default 0.5: half the baseline ratio)")

    li = sub.add_parser(
        "lint",
        help="determinism & simulation-safety static analysis "
             "(rules R001-R013; exit 0 clean, 1 new findings, 2 usage error)",
    )
    li.add_argument("paths", nargs="*",
                    help="files/directories (default: src and scripts)")
    li.add_argument("--format", choices=("text", "json"), default="text",
                    dest="fmt", help="report format (default text)")
    li.add_argument("--baseline", default=None,
                    help="baseline JSON; its findings don't fail the run")
    li.add_argument("--write-baseline", action="store_true",
                    help="rewrite --baseline from the current findings")
    li.add_argument("--rules", default=None,
                    help="comma-separated rule subset (e.g. R001,R004)")
    li.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    li.add_argument("--graph", action="store_true",
                    help="dump the import graph / layering analysis as "
                         "JSON and exit 0")
    li.add_argument("--cache", default=None,
                    help="project index cache file "
                         "(default .reprolint-cache.json)")
    li.add_argument("--no-cache", action="store_true",
                    help="ignore and don't write the index cache")
    return parser


def _parse_mix(text: str):
    if text.upper() in DISTRIBUTIONS:
        return text.upper()
    try:
        s1, s2, s3 = (float(x) for x in text.split(","))
        return (s1, s2, s3)
    except ValueError:
        raise SystemExit(
            f"invalid mix {text!r}: use a letter A-O or 'S1,S2,S3' shares"
        ) from None


def _cmd_tables(_args) -> None:
    t1 = {name: (r.mean_vcpus, r.mean_mem_gb)
          for name, r in ((n, table1_row(c)) for n, c in PROVIDERS.items())}
    print("Table I — mean vCPU & vRAM per VM")
    print(render_table1(t1))
    print()
    t2 = {name: table2_row(cat).ratios for name, cat in PROVIDERS.items()}
    print("Table II — M/C ratio per oversubscription level (GB/core)")
    print(render_table2(t2))


def _cmd_generate(args) -> None:
    params = WorkloadParams(
        catalog=PROVIDERS[args.provider],
        level_mix=_parse_mix(args.mix),
        target_population=args.population,
        seed=args.seed,
    )
    workload = generate_workload(params)
    save_trace(workload, args.output)
    print(f"wrote {len(workload)} VM lifecycles to {args.output} "
          f"(peak population {peak_population(workload)})")


def _cmd_size(args) -> None:
    workload = load_trace(args.trace)
    print(f"loaded {len(workload)} VM lifecycles "
          f"(peak population {peak_population(workload)})")
    lb = demand_lower_bound(workload, args.machine)
    sized = minimal_cluster(workload, args.machine, policy=args.policy)
    print(f"machine: {args.machine.cpus} CPUs / {args.machine.mem_gb:g} GB "
          f"(target ratio {args.machine.target_ratio:g})")
    print(f"lower bound: {lb} PMs")
    print(f"minimal cluster ({args.policy}): {sized.pms} PMs "
          f"({len(sized.probes)} probe simulations)")


def _cmd_evaluate(args) -> None:
    from repro.api import RunSpec, evaluate

    spec = RunSpec(
        provider=args.provider,
        mix=_parse_mix(args.mix),
        target_population=args.population,
        seed=args.seed,
        host_cpus=args.machine.cpus,
        host_mem_gb=args.machine.mem_gb,
        policy=args.policy,
        kernel=args.kernel,
        shards=args.shards,
        router=args.router,
        workers=1,
    )
    outcome = evaluate(spec)
    s1, s2, s3 = outcome.mix
    print(f"provider {outcome.provider}, mix {s1:g}/{s2:g}/{s3:g} "
          f"(1:1/2:1/3:1), {args.population} target VMs, seed {args.seed}")
    for ratio, pms in sorted(outcome.baseline_pms_per_level.items()):
        print(f"  dedicated {ratio:g}:1 cluster : {pms} PMs")
    print(f"  baseline total          : {outcome.baseline_pms} PMs")
    print(f"  SlackVM shared cluster  : {outcome.slackvm_pms} PMs")
    print(f"  savings                 : {outcome.savings_percent:.1f}%")


def _cmd_sweep(args) -> None:
    from repro.runner import SweepSpec, derive_seeds, run_sweep

    if args.resume and not args.out:
        raise SystemExit("--resume requires --out")
    if args.num_seeds > 1:
        seeds = derive_seeds(args.seed, args.num_seeds)
    else:
        seeds = (args.seed,)
    mixes = tuple(m for m in args.mixes.split(",") if m) if args.mixes else None
    spec = SweepSpec(
        providers=(args.provider,),
        mixes=mixes if mixes is not None else tuple(DISTRIBUTIONS),
        seeds=seeds,
        target_population=args.population,
        kernel=args.kernel,
        shards=args.shards,
        router=args.router,
    )
    progress = (lambda line: print(line, file=sys.stderr)) if args.workers > 1 else None
    sweep = run_sweep(spec, workers=args.workers, out=args.out,
                      resume=args.resume, progress=progress)
    if args.out:
        print(f"checkpoint: {args.out} ({len(sweep.executed)} cells run, "
              f"{len(sweep.skipped)} resumed, {sweep.elapsed_s:.1f}s "
              f"at {args.workers} worker(s))", file=sys.stderr)
    sweep.raise_on_failure()
    # Fig. 3 uses the first seed's outcomes; Fig. 4 averages all seeds.
    outcomes = {r.mix_label: r.outcome for r in sweep.results.values()
                if r.seed == seeds[0]}
    savings: dict[str, list[float]] = {}
    for r in sweep.results.values():
        savings.setdefault(r.mix_label, []).append(r.outcome.savings_percent)
    print(f"Figure 3 — unallocated resources ({args.provider})")
    print(render_fig3(outcomes))
    print()
    print(f"Figure 4 — PM savings % ({args.provider})")
    print(render_fig4({k: sum(v) / len(v) for k, v in savings.items()}))


def _cmd_oversub(args) -> None:
    import json

    from repro.oversub.evaluate import OversubSweepSpec, run_oversub_sweep
    from repro.runner import derive_seeds

    if args.num_seeds > 1:
        seeds = derive_seeds(args.seed, args.num_seeds)
    else:
        seeds = (args.seed,)
    from repro.api import RunSpec

    strategies = tuple(s for s in args.strategies.split(",") if s)
    mixes = tuple(m for m in args.mixes.split(",") if m)
    base = RunSpec(
        provider=args.provider,
        target_population=args.population,
        seed=args.seed,
        host_cpus=args.machine.cpus,
        host_mem_gb=args.machine.mem_gb,
        policy=args.policy,
        kernel=args.kernel,
        oversub_update_every=args.update_every,
    )
    spec = OversubSweepSpec.from_run_spec(
        base,
        strategies=strategies,
        mixes=mixes,
        seeds=seeds,
        scarcity=args.scarcity,
    )
    result = run_oversub_sweep(spec)
    print(f"Dynamic oversubscription — packing gain vs violation risk "
          f"({args.provider}, scarcity {args.scarcity:g})")
    print(result.table())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dicts(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(result.cells)} cells to {args.out}", file=sys.stderr)


def _cmd_shard(args) -> int:
    from time import perf_counter

    from repro.api import (
        RunSpec,
        build_config,
        build_machines,
        build_simulation,
        build_workload,
    )
    from repro.simulator.conformance import result_stream

    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")
    spec = RunSpec(
        provider=args.provider,
        mix=_parse_mix(args.mix),
        target_population=args.population,
        seed=args.seed,
        num_hosts=args.hosts,
        host_cpus=args.machine.cpus,
        host_mem_gb=args.machine.mem_gb,
        policy=args.policy,
        kernel=args.kernel,
        shards=args.shards,
        router=args.router,
        workers=args.workers,
    )
    workload = load_trace(args.trace) if args.trace else build_workload(spec)
    machines = build_machines(spec, workload)
    config = build_config(spec, workload)

    def timed(run_spec, checkpoint=None, resume=False):
        sim = build_simulation(run_spec, machines, config=config)
        if checkpoint is not None:
            sim.checkpoint = checkpoint
            sim.resume = resume
        t0 = perf_counter()
        result = sim.run(list(workload))
        return result, perf_counter() - t0

    print(f"{len(workload)} VM lifecycles on {len(machines)} hosts "
          f"({args.machine.cpus} CPUs / {args.machine.mem_gb:g} GB), "
          f"{spec.shards} shard(s) via {spec.router} routing, "
          f"kernel {spec.kernel}")
    result, wall = timed(spec, checkpoint=args.checkpoint, resume=args.resume)
    events = len(result.timeline.times)
    print(f"sharded : {events} events in {wall:.2f}s "
          f"({events / wall:.0f} ev/s), {len(result.placements)} placed, "
          f"{len(result.rejections)} rejected, "
          f"{result.pooled_placements} pooled")

    rc = 0
    if args.verify:
        serial, serial_wall = timed(spec.replace(workers=1))
        identical = result_stream(serial) == result_stream(result)
        print(f"inline  : {events / serial_wall:.0f} ev/s "
              f"({serial_wall:.2f}s); streams "
              f"{'byte-identical' if identical else 'DIVERGED'}; "
              f"pool speedup {serial_wall / wall:.2f}x")
        if not identical:
            rc = 1
    if args.baseline:
        base, base_wall = timed(spec.replace(shards=1, workers=1))
        print(f"unsharded baseline: {len(base.timeline.times)} events in "
              f"{base_wall:.2f}s ({len(base.timeline.times) / base_wall:.0f} "
              f"ev/s); sharded speedup {base_wall / wall:.2f}x")
    return rc


def _cmd_serve(args) -> int:
    from repro.serving import ServiceSpec, serve

    spec = ServiceSpec(
        provider=args.provider,
        mix=_parse_mix(args.mix),
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        mean_lifetime=args.mean_lifetime,
        diurnal_amplitude=args.diurnal,
        num_hosts=args.hosts,
        host_cpus=args.machine.cpus,
        host_mem_gb=args.machine.mem_gb,
        shards=args.shards,
        policy=args.policy,
        queue_bound=args.queue_bound,
        timeout_s=args.timeout,
        service_mean=args.service_mean,
    )
    report = serve(spec)
    print(report.summary())
    if args.report:
        Path(args.report).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote SLO report to {args.report}")
    return 0


def _cmd_testbed(args) -> None:
    from repro.perfmodel import TestbedParams, run_testbed

    result = run_testbed(TestbedParams(duration=args.duration, seed=args.seed))
    print("Table IV — median p90 response times")
    print(render_table4(result.table4()))
    print()
    print("Figure 2 — p90 quartiles (ms)")
    print(render_fig2({
        "baseline": {k: v.quartiles_ms() for k, v in result.baseline.items()},
        "slackvm": {k: v.quartiles_ms() for k, v in result.slackvm.items()},
    }))


def _cmd_audit(args) -> int:
    from repro.obs.audit import audit_workload

    params = WorkloadParams(
        catalog=PROVIDERS[args.provider],
        level_mix=_parse_mix(args.mix),
        target_population=args.vms,
        seed=args.seed,
    )
    workload = generate_workload(params)
    lb = demand_lower_bound(workload, args.machine)
    pms = args.pms if args.pms > 0 else max(1, math.ceil(lb * 1.15))
    machines = [
        MachineSpec(
            name=f"{args.machine.name}-{i}",
            cpus=args.machine.cpus,
            mem_gb=args.machine.mem_gb,
            topology_factory=args.machine.topology_factory,
        )
        for i in range(pms)
    ]
    print(f"replaying {len(workload)} VM lifecycles "
          f"(peak population {peak_population(workload)}) on {pms} PMs "
          f"(lower bound {lb})")
    report = audit_workload(workload, machines, policy=args.policy)
    print(report.summary())
    payload = report.to_dict(include_decisions=not args.no_decisions)
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    print(f"wrote metrics/decision dump to {args.output}")
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    from repro.bench import (
        EngineBenchSpec,
        compare_engine_bench,
        crossover_report,
        run_engine_bench,
    )
    from repro.simulator.vectorpool import POLICIES as _ALL_POLICIES

    policies = (
        tuple(_ALL_POLICIES)
        if args.policies == "all"
        else tuple(p for p in args.policies.split(",") if p)
    )
    try:
        hosts = tuple(int(h) for h in args.hosts.split(",") if h)
        scale_hosts = tuple(int(h) for h in args.scale_hosts.split(",") if h)
        shard_hosts = tuple(int(h) for h in args.shard_hosts.split(",") if h)
        shard_counts = tuple(int(s) for s in args.shard_counts.split(",") if s)
    except ValueError:
        raise SystemExit(
            "invalid --hosts/--scale-hosts/--shard-hosts/--shard-counts: "
            "use e.g. 500,2000,5000"
        )
    spec = EngineBenchSpec(
        hosts=hosts,
        policies=policies,
        provider=args.provider,
        seed=args.seed,
        vms_per_host=args.vms_per_host,
        host_cpus=args.machine.cpus,
        host_mem_gb=args.machine.mem_gb,
        verify=not args.no_verify,
        scale_hosts=scale_hosts,
        scale_policies=tuple(p for p in args.scale_policies.split(",") if p),
        scale_vms_per_host=args.scale_vms_per_host,
        scale_warmup_vms=args.scale_warmup_vms,
        shard_hosts=shard_hosts,
        shard_counts=shard_counts,
        shard_policies=tuple(p for p in args.shard_policies.split(",") if p),
        shard_vms_per_host=args.shard_vms_per_host,
    )
    payload = run_engine_bench(spec, progress=print)
    head = payload["headline"]
    pruned_x = head["speedups"].get("pruned", head["speedup"])
    print(f"headline: hosts={head['num_hosts']} policy={head['policy']} "
          f"{head['events_per_s']:.0f} ev/s, pruned {pruned_x:.2f}x / "
          f"incremental {head['speedup']:.2f}x over naive")
    shard_head = payload.get("shard_headline")
    if shard_head:
        critical = shard_head["speedups"].get("critical_path")
        suffix = (
            f", critical path {critical:.2f}x" if critical is not None else ""
        )
        print(f"shard headline: hosts={shard_head['num_hosts']} "
              f"policy={shard_head['policy']} shards={shard_head['shards']} "
              f"{shard_head['events_per_s']:.0f} ev/s, "
              f"{shard_head['speedup']:.2f}x over serial pruned{suffix}")
    for line in crossover_report(payload):
        print(f"CROSSOVER: {line}")
    if args.out:
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote results to {args.out}")
    if args.check:
        baseline = json.loads(Path(args.check).read_text(encoding="utf-8"))
        for line in crossover_report(baseline):
            print(f"baseline CROSSOVER: {line}")
        problems = compare_engine_bench(payload, baseline, tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"baseline check passed ({args.check}, "
              f"tolerance {args.tolerance:.0%})")
    return 0


def _cmd_lint(args) -> int:
    from repro.devtools.lint import main as lint_main

    argv: list[str] = list(args.paths)
    argv += ["--format", args.fmt]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.rules:
        argv += ["--rules", args.rules]
    if args.list_rules:
        argv.append("--list-rules")
    if args.graph:
        argv.append("--graph")
    if args.cache:
        argv += ["--cache", args.cache]
    if args.no_cache:
        argv.append("--no-cache")
    return lint_main(argv)


_COMMANDS = {
    "tables": _cmd_tables,
    "generate": _cmd_generate,
    "size": _cmd_size,
    "evaluate": _cmd_evaluate,
    "sweep": _cmd_sweep,
    "oversub": _cmd_oversub,
    "shard": _cmd_shard,
    "serve": _cmd_serve,
    "testbed": _cmd_testbed,
    "audit": _cmd_audit,
    "bench": _cmd_bench,
    "lint": _cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        rc = _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return rc or 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
