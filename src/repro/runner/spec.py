"""Sweep specification: the experiment grid and its seed derivation.

A :class:`SweepSpec` names a provider × mix × seed grid with the knobs
``evaluate_distribution`` exposes.  Everything in the spec is a plain
JSON value, which buys three properties at once:

* cells can be shipped to worker processes without pickling library
  objects (catalogs are resolved by name inside the worker);
* the spec embeds verbatim in the checkpoint header, so a resumed run
  can verify it is continuing the *same* sweep (``fingerprint``);
* two runs of the same spec enumerate the same cells in the same order
  with the same seeds — the determinism contract of the runner.

Seeds come either from an explicit ``seeds`` tuple (drop-in for the
legacy drivers that pinned literal seeds) or are derived from
``root_seed`` with :meth:`numpy.random.SeedSequence.spawn`, which
guarantees statistically independent streams per seed slot.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.core.errors import RunnerError
from repro.hardware.machine import SIM_WORKER
from repro.workload.distributions import DISTRIBUTIONS, LevelMix

__all__ = ["SweepCell", "SweepSpec", "derive_seeds", "resolve_mix_entry"]

#: Checkpoint/spec schema version (bump on incompatible changes).
#: v2 added the kernel/shards/router cell knobs; v1 files still parse
#: (the new fields default), but their fingerprints no longer match,
#: so a resume against a v1 checkpoint is refused explicitly.
SPEC_VERSION = 2


def derive_seeds(root_seed: int, n: int) -> tuple[int, ...]:
    """``n`` independent integer seeds derived from one root seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so the streams seeded
    by the results are statistically independent of each other and of
    the root.  Each child sequence is collapsed to a 128-bit integer
    (``default_rng`` accepts arbitrary-size ints), keeping derived
    seeds JSON-serializable and printable in cell keys.
    """
    if n < 0:
        raise RunnerError(f"cannot derive {n} seeds")
    root = np.random.SeedSequence(root_seed)
    out = []
    for child in root.spawn(n):
        hi, lo = (int(w) for w in child.generate_state(2, dtype=np.uint64))
        out.append((hi << 64) | lo)
    return tuple(out)


def resolve_mix_entry(entry: str) -> tuple[str, LevelMix]:
    """Resolve one spec mix entry to ``(label, (s1, s2, s3))``.

    Three accepted forms: a paper distribution letter (``"F"``), a raw
    percent triple (``"50,0,50"``, labelled by itself), or a labelled
    triple (``"hot:50,0,50"``).
    """
    text = entry.strip()
    if ":" in text:
        label, _, triple = text.partition(":")
        label = label.strip()
        triple = triple.strip()
    elif text.upper() in DISTRIBUTIONS:
        return text.upper(), DISTRIBUTIONS[text.upper()]
    else:
        label = triple = text
    try:
        s1, s2, s3 = (float(x) for x in triple.split(","))
    except ValueError:
        raise RunnerError(
            f"invalid mix entry {entry!r}: expected a letter "
            f"{'/'.join(DISTRIBUTIONS)}, 'S1,S2,S3' shares, or 'label:S1,S2,S3'"
        ) from None
    if not label:
        raise RunnerError(f"invalid mix entry {entry!r}: empty label")
    return label, (s1, s2, s3)


@dataclass(frozen=True)
class SweepCell:
    """One experiment of a sweep: a (provider, mix, seed) point."""

    index: int
    provider: str
    mix_label: str
    mix: LevelMix
    seed: int

    @property
    def key(self) -> str:
        """Stable identifier used for checkpointing and resume."""
        return f"{self.provider}/{self.mix_label}/{self.seed}"


@dataclass(frozen=True)
class SweepSpec:
    """A provider × mix × seed experiment grid.

    ``providers`` are registry names resolved against
    :data:`repro.workload.PROVIDERS` *inside the worker* — an unknown
    name surfaces as a failed-cell record, not a crashed sweep.  Mix
    entries are resolved eagerly (they are spec syntax; see
    :func:`resolve_mix_entry`).

    ``seeds`` (explicit) takes precedence over the ``root_seed`` /
    ``num_seeds`` derivation; the latter is the recommended mode for
    many-seed sweeps.
    """

    providers: tuple[str, ...] = ("ovhcloud",)
    mixes: tuple[str, ...] = tuple(DISTRIBUTIONS)
    seeds: Optional[tuple[int, ...]] = None
    root_seed: int = 0
    num_seeds: int = 1
    target_population: int = 500
    policy: str = "progress"
    baseline_policy: str = "first_fit"
    pooling: bool = True
    machine_cpus: int = SIM_WORKER.cpus
    machine_mem_gb: float = SIM_WORKER.mem_gb
    kernel: str = "incremental"
    shards: int = 1
    router: str = "hash"
    resolved_mixes: tuple[tuple[str, LevelMix], ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if not self.providers:
            raise RunnerError("a sweep needs at least one provider")
        if not self.mixes:
            raise RunnerError("a sweep needs at least one mix")
        if self.seeds is None and self.num_seeds <= 0:
            raise RunnerError("num_seeds must be positive when seeds is not given")
        if self.seeds is not None and not self.seeds:
            raise RunnerError("explicit seeds tuple cannot be empty")
        if self.target_population <= 0:
            raise RunnerError("target_population must be positive")
        if self.machine_cpus <= 0 or self.machine_mem_gb <= 0:
            raise RunnerError("machine_cpus and machine_mem_gb must be positive")
        if self.shards < 1:
            raise RunnerError(f"shards must be >= 1, got {self.shards}")
        resolved = tuple(resolve_mix_entry(m) for m in self.mixes)
        labels = [label for label, _ in resolved]
        if len(set(labels)) != len(labels):
            raise RunnerError(f"duplicate mix labels in {labels}")
        object.__setattr__(self, "resolved_mixes", resolved)

    # -- seeds & cells -------------------------------------------------------

    def effective_seeds(self) -> tuple[int, ...]:
        """The per-slot seeds: explicit, or SeedSequence-derived."""
        if self.seeds is not None:
            return tuple(int(s) for s in self.seeds)
        return derive_seeds(self.root_seed, self.num_seeds)

    def cells(self) -> list[SweepCell]:
        """Enumerate the grid in deterministic order.

        Seed slots are shared across (provider, mix) pairs — the
        Figure 4 protocol averages the *same* trace seeds over every
        mix, so a seed slot means "the same workload randomness".
        """
        seeds = self.effective_seeds()
        out: list[SweepCell] = []
        index = 0
        for provider in self.providers:
            for label, mix in self.resolved_mixes:
                for seed in seeds:
                    out.append(
                        SweepCell(
                            index=index,
                            provider=provider,
                            mix_label=label,
                            mix=mix,
                            seed=seed,
                        )
                    )
                    index += 1
        return out

    def __len__(self) -> int:
        return len(self.providers) * len(self.mixes) * len(self.effective_seeds())

    def __iter__(self) -> Iterator[SweepCell]:
        return iter(self.cells())

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": SPEC_VERSION,
            "providers": list(self.providers),
            "mixes": list(self.mixes),
            "seeds": None if self.seeds is None else [int(s) for s in self.seeds],
            "root_seed": self.root_seed,
            "num_seeds": self.num_seeds,
            "target_population": self.target_population,
            "policy": self.policy,
            "baseline_policy": self.baseline_policy,
            "pooling": self.pooling,
            "machine_cpus": self.machine_cpus,
            "machine_mem_gb": self.machine_mem_gb,
            "kernel": self.kernel,
            "shards": self.shards,
            "router": self.router,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        version = data.get("version", SPEC_VERSION)
        if version not in (1, SPEC_VERSION):
            raise RunnerError(
                f"unsupported sweep spec version {version} (expected {SPEC_VERSION})"
            )
        seeds = data.get("seeds")
        return cls(
            providers=tuple(data["providers"]),
            mixes=tuple(data["mixes"]),
            seeds=None if seeds is None else tuple(int(s) for s in seeds),
            root_seed=int(data.get("root_seed", 0)),
            num_seeds=int(data.get("num_seeds", 1)),
            target_population=int(data["target_population"]),
            policy=data.get("policy", "progress"),
            baseline_policy=data.get("baseline_policy", "first_fit"),
            pooling=bool(data.get("pooling", True)),
            machine_cpus=int(data["machine_cpus"]),
            machine_mem_gb=float(data["machine_mem_gb"]),
            kernel=data.get("kernel", "incremental"),
            shards=int(data.get("shards", 1)),
            router=data.get("router", "hash"),
        )

    def fingerprint(self) -> str:
        """Content hash used to detect spec drift on resume."""
        canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def seeds_from_arg(text: str | Sequence[int]) -> tuple[int, ...]:
    """Parse a CLI ``--seeds`` value: ``"42,7"`` or an int sequence."""
    if isinstance(text, str):
        try:
            return tuple(int(x) for x in text.split(","))
        except ValueError:
            raise RunnerError(f"invalid seeds {text!r}: expected comma-separated ints")
    return tuple(int(x) for x in text)
