"""Process-pool sweep execution with fault capture and checkpointing.

``run_sweep`` shards a :class:`~repro.runner.spec.SweepSpec` across a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The worker function
receives only JSON primitives (provider *names*, mix triples, integer
seeds) and resolves library objects locally, so no start method or
pickling subtlety leaks into the API, and the exact same function runs
in-process for ``workers <= 1`` — the serial path *is* the parallel
path minus the pool, which is what makes the two bit-identical.

Fault model: any exception inside a cell (unknown provider, infeasible
sizing, workload error) is captured in the worker and returned as a
``failed`` record with type, message, traceback and the cell's seed;
sibling cells keep running.  Pool-level failures (a worker killed by
the OS) are likewise folded into failed records rather than aborting
the sweep.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.errors import RunnerError
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.results import STATUS_FAILED, STATUS_OK, CellResult, outcome_to_dict
from repro.runner.spec import SweepCell, SweepSpec

__all__ = ["SweepResult", "run_sweep"]


def _cell_payload(spec: SweepSpec, cell: SweepCell) -> dict:
    """JSON-primitive work unit shipped to a worker process.

    ``run_spec`` is a :class:`repro.api.RunSpec` dict built *without*
    eager validation — the worker parses it inside its fault-capture
    block, so a bad knob (e.g. an unknown provider) surfaces as a
    failed-cell record, not a crashed sweep.  Shard execution inside a
    cell is pinned inline (``workers=1``): the sweep already owns the
    process pool, one level up.
    """
    return {
        "provider": cell.provider,
        "mix_label": cell.mix_label,
        "mix": list(cell.mix),
        "seed": cell.seed,
        "baseline_policy": spec.baseline_policy,
        "run_spec": {
            "provider": cell.provider,
            "mix": list(cell.mix),
            "target_population": spec.target_population,
            "seed": cell.seed,
            "host_cpus": spec.machine_cpus,
            "host_mem_gb": spec.machine_mem_gb,
            "policy": spec.policy,
            "kernel": spec.kernel,
            "pooling": spec.pooling,
            "shards": spec.shards,
            "router": spec.router,
            "workers": 1,
        },
    }


def _run_cell(payload: dict) -> dict:
    """Execute one cell; never raises — failures become records.

    Module-level so the process pool can address it by qualified name;
    imports are deferred so a forked worker touches the heavy modules
    only when it actually runs a cell.
    """
    started = time.perf_counter()
    record = {
        "kind": "cell",
        "provider": payload["provider"],
        "mix_label": payload["mix_label"],
        "mix": list(payload["mix"]),
        "seed": payload["seed"],
    }
    record["key"] = "{provider}/{mix_label}/{seed}".format(**record)
    try:
        from repro.api import RunSpec, evaluate

        run_spec = RunSpec.from_dict(payload["run_spec"])
        outcome = evaluate(
            run_spec, baseline_policy=payload["baseline_policy"]
        )
        record["status"] = STATUS_OK
        record["outcome"] = outcome_to_dict(outcome)
    except Exception as exc:  # noqa: BLE001 — fault capture is the contract
        record["status"] = STATUS_FAILED
        record["error"] = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
    record["elapsed_s"] = time.perf_counter() - started
    return record


@dataclass(frozen=True)
class SweepResult:
    """Everything a finished (or resumed) sweep produced."""

    spec: SweepSpec
    results: dict[str, CellResult]  # cell key -> result, in grid order
    executed: tuple[str, ...]  # keys run by *this* invocation
    skipped: tuple[str, ...]  # keys satisfied by the checkpoint
    workers: int
    elapsed_s: float

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results.values())

    def failures(self) -> list[CellResult]:
        return [r for r in self.results.values() if not r.ok]

    def outcomes(self) -> dict[str, "object"]:
        """``{cell key: DistributionOutcome}`` for the ok cells."""
        return {k: r.outcome for k, r in self.results.items() if r.ok}

    def raise_on_failure(self) -> "SweepResult":
        failures = self.failures()
        if failures:
            lines = [
                f"  {r.key}: {r.error['type']}: {r.error['message']}"
                if r.error
                else f"  {r.key}: unknown failure"
                for r in failures
            ]
            raise RunnerError(
                f"{len(failures)}/{len(self.results)} sweep cells failed:\n"
                + "\n".join(lines)
            )
        return self


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    out: Optional[str] = None,
    resume: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run every cell of ``spec``, sharded over ``workers`` processes.

    * ``out`` — JSONL checkpoint path; each completed cell is appended
      and flushed, so a killed sweep can be continued.
    * ``resume`` — skip cells with an ``ok`` record in ``out`` (failed
      cells are retried); requires ``out``.
    * ``metrics`` — optional registry; receives ``runner.*`` counters,
      a per-cell wall-clock histogram and a throughput gauge.
    * ``progress`` — callable invoked with one human-readable line per
      completed cell (e.g. ``print``).

    Determinism: the result for every cell is a pure function of the
    spec — same spec in, same records out, for any worker count and
    any interleaving.
    """
    metrics = NULL_METRICS if metrics is None else metrics
    if resume and out is None:
        raise RunnerError("resume=True requires a checkpoint path (out=...)")
    cells = spec.cells()
    total = len(cells)

    checkpoint: Optional[SweepCheckpoint] = None
    done: dict[str, CellResult] = {}
    if out is not None:
        checkpoint = SweepCheckpoint(out)
        done = checkpoint.start(spec, resume=resume)
    # Only successful prior results satisfy a cell; failures re-run.
    satisfied = {k: r for k, r in done.items() if r.ok}
    pending = [c for c in cells if c.key not in satisfied]

    if metrics.enabled:
        metrics.counter(metric_names.RUNNER_CELLS_TOTAL).inc(total)
        metrics.counter(metric_names.RUNNER_CELLS_SKIPPED).inc(len(satisfied))

    started = time.perf_counter()
    completed = 0
    results: dict[str, CellResult] = dict(satisfied)

    def finish(result: CellResult) -> None:
        nonlocal completed
        completed += 1
        results[result.key] = result
        if checkpoint is not None:
            # elapsed_s is operator telemetry; resume/replay keys on the
            # cell fingerprint and never reads it (tests/runner pin this).
            checkpoint.append(result)  # reprolint: disable=R013
        if metrics.enabled:
            metrics.counter(metric_names.RUNNER_CELLS_DONE).inc()
            if not result.ok:
                metrics.counter(metric_names.RUNNER_CELLS_FAILED).inc()
            metrics.histogram(metric_names.RUNNER_CELL_SECONDS).observe(result.elapsed_s)
        if progress is not None:
            status = "ok" if result.ok else f"FAILED ({result.error['type']})"
            progress(
                f"[{completed + len(satisfied)}/{total}] "
                f"{result.key} -> {status} ({result.elapsed_s:.2f}s)"
            )

    try:
        if workers <= 1 or len(pending) <= 1:
            for cell in pending:
                record = _run_cell(_cell_payload(spec, cell))
                finish(CellResult.from_record(record, record.get("elapsed_s", 0.0)))
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_run_cell, _cell_payload(spec, cell)): cell
                    for cell in pending
                }
                for future in as_completed(futures):
                    cell = futures[future]
                    exc = future.exception()
                    if exc is not None:
                        # Worker died outside _run_cell's catch (e.g.
                        # OOM-killed): synthesize the failed record.
                        finish(
                            CellResult(
                                provider=cell.provider,
                                mix_label=cell.mix_label,
                                mix=cell.mix,
                                seed=cell.seed,
                                status=STATUS_FAILED,
                                error={
                                    "type": type(exc).__name__,
                                    "message": str(exc),
                                    "traceback": "".join(
                                        traceback.format_exception(exc)
                                    ),
                                },
                            )
                        )
                        continue
                    record = future.result()
                    finish(
                        CellResult.from_record(record, record.get("elapsed_s", 0.0))
                    )
    finally:
        if checkpoint is not None:
            checkpoint.close()

    elapsed = time.perf_counter() - started
    if metrics.enabled:
        metrics.timer(metric_names.RUNNER_SWEEP_WALL).observe(elapsed)
        if elapsed > 0:
            metrics.gauge(metric_names.RUNNER_THROUGHPUT_CELLS_PER_S).set(completed / elapsed)

    ordered = {c.key: results[c.key] for c in cells if c.key in results}
    return SweepResult(
        spec=spec,
        results=ordered,
        executed=tuple(c.key for c in pending),
        skipped=tuple(k for k in satisfied),
        workers=max(1, workers),
        elapsed_s=elapsed,
    )
