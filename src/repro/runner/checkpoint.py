"""Append-only JSONL sweep checkpoints with resume.

File layout (one JSON object per line, ``sort_keys`` canonical form):

* line 1 — header: ``{"kind": "header", "fingerprint": ..., "spec":
  {...}, "version": 1}``;
* then one ``{"kind": "cell", ...}`` record per *completed* cell, in
  completion order (see :meth:`CellResult.to_record` for the schema).

Completion order is nondeterministic under a process pool, so the
byte-identity contract between two runs of the same spec holds for the
*sorted* line sets, not the raw files.  Records are flushed per cell:
killing a sweep loses at most the in-flight cells, and a resumed run
(:meth:`SweepCheckpoint.load`) re-executes only cells with no ``ok``
record.  A cell appearing twice (e.g. a failure retried by a resume)
is resolved to its last record.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, TextIO

from repro.core.errors import RunnerError
from repro.runner.results import CellResult
from repro.runner.spec import SweepSpec

__all__ = ["SweepCheckpoint"]


def _canon(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class SweepCheckpoint:
    """One sweep's JSONL result file (writer + resume loader)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: Optional[TextIO] = None

    # -- writing -------------------------------------------------------------

    def start(self, spec: SweepSpec, resume: bool = False) -> dict[str, CellResult]:
        """Open the checkpoint and return already-completed results.

        With ``resume=False`` any existing file is truncated and a
        fresh header written.  With ``resume=True`` an existing file is
        validated against ``spec`` (fingerprint match) and its cell
        records returned; a missing file degrades to a fresh start.
        """
        done: dict[str, CellResult] = {}
        if resume and self.path.exists():
            done = self.load(spec)
            self._fh = self.path.open("a", encoding="utf-8")
            return done
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        header = {
            "kind": "header",
            "version": 1,
            "fingerprint": spec.fingerprint(),
            "spec": spec.to_dict(),
        }
        self._fh.write(_canon(header) + "\n")
        self._fh.flush()
        return done

    def append(self, result: CellResult) -> None:
        if self._fh is None:
            raise RunnerError("checkpoint not started")
        self._fh.write(_canon(result.to_record()) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------------

    def load(self, spec: Optional[SweepSpec] = None) -> dict[str, CellResult]:
        """Parse the file into ``{cell key: last CellResult}``.

        When ``spec`` is given the header fingerprint must match — a
        checkpoint from a different grid must not silently satisfy a
        resume.  Truncated trailing lines (a killed writer) are
        tolerated and dropped.
        """
        if not self.path.exists():
            raise RunnerError(f"no checkpoint at {self.path}")
        results: dict[str, CellResult] = {}
        header = None
        with self.path.open("r", encoding="utf-8") as fh:
            for i, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A kill mid-write leaves at most one torn last line.
                    continue
                kind = record.get("kind")
                if i == 0:
                    if kind != "header":
                        raise RunnerError(
                            f"{self.path} is not a sweep checkpoint (no header)"
                        )
                    header = record
                    continue
                if kind == "cell":
                    result = CellResult.from_record(record)
                    results[result.key] = result
        if header is None:
            raise RunnerError(f"{self.path} is empty")
        if spec is not None and header.get("fingerprint") != spec.fingerprint():
            raise RunnerError(
                f"checkpoint {self.path} was produced by a different sweep "
                f"spec (fingerprint {header.get('fingerprint')} != "
                f"{spec.fingerprint()}); refusing to resume"
            )
        return results

    def load_spec(self) -> SweepSpec:
        """Reconstruct the spec a checkpoint was produced with."""
        if not self.path.exists():
            raise RunnerError(f"no checkpoint at {self.path}")
        with self.path.open("r", encoding="utf-8") as fh:
            first = fh.readline().strip()
        try:
            header = json.loads(first)
        except json.JSONDecodeError:
            raise RunnerError(f"{self.path} has a corrupt header") from None
        if header.get("kind") != "header":
            raise RunnerError(f"{self.path} is not a sweep checkpoint")
        return SweepSpec.from_dict(header["spec"])
