"""Parallel experiment runner (sweep sharding, checkpointing, resume).

The paper's headline figures sweep many independent
``evaluate_distribution`` cells (provider × mix × seed, each hiding a
``minimal_cluster`` sizing search).  This package shards such a sweep
across a process pool while keeping the results bit-identical to a
serial run:

* :mod:`repro.runner.spec` — the sweep grid (:class:`SweepSpec` /
  :class:`SweepCell`) and deterministic per-cell seed derivation via
  :func:`numpy.random.SeedSequence.spawn`;
* :mod:`repro.runner.results` — JSON-lossless (de)serialization of
  :class:`~repro.analysis.experiments.DistributionOutcome` and the
  per-cell result record;
* :mod:`repro.runner.checkpoint` — append-only JSONL checkpoints with
  resume-from-partial-results;
* :mod:`repro.runner.runner` — :func:`run_sweep`, the process-pool
  executor with worker-side fault capture and metrics;
* :mod:`repro.runner.figures` — drop-in parallel variants of the
  Figure 3/4 drivers.
"""

from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.figures import parallel_fig3_series, parallel_fig4_grid
from repro.runner.results import CellResult, outcome_from_dict, outcome_to_dict
from repro.runner.runner import SweepResult, run_sweep
from repro.runner.spec import SweepCell, SweepSpec, derive_seeds

__all__ = [
    "SweepSpec",
    "SweepCell",
    "derive_seeds",
    "CellResult",
    "outcome_to_dict",
    "outcome_from_dict",
    "SweepCheckpoint",
    "SweepResult",
    "run_sweep",
    "parallel_fig3_series",
    "parallel_fig4_grid",
]
