"""Cell result records and lossless outcome (de)serialization.

The determinism contract of the runner ("serial and parallel runs
produce byte-identical sorted checkpoints") hinges on this module:
every :class:`~repro.analysis.experiments.DistributionOutcome` crosses
the process boundary as a JSON record, and the round-trip must be
exact.  ``json`` emits shortest-round-trip ``repr`` floats, so
``float → text → float`` is lossless; tuples and float dict keys are
restored structurally on the way back.

Volatile fields (wall-clock ``elapsed_s``) live on :class:`CellResult`
but are *excluded* from the serialized record — they differ between
runs by construction and would break the byte-identity contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.analysis.experiments import DistributionOutcome
from repro.core.errors import RunnerError
from repro.simulator.metrics import UnallocatedShares
from repro.workload.distributions import LevelMix

__all__ = ["CellResult", "outcome_to_dict", "outcome_from_dict"]

STATUS_OK = "ok"
STATUS_FAILED = "failed"


def outcome_to_dict(outcome: DistributionOutcome) -> dict:
    """JSON-compatible, losslessly invertible outcome encoding."""
    return {
        "provider": outcome.provider,
        "mix": list(outcome.mix),
        "seed": outcome.seed,
        "baseline_pms_per_level": {
            repr(ratio): pms
            for ratio, pms in sorted(outcome.baseline_pms_per_level.items())
        },
        "slackvm_pms": outcome.slackvm_pms,
        "baseline_unallocated": {
            "cpu": outcome.baseline_unallocated.cpu,
            "mem": outcome.baseline_unallocated.mem,
        },
        "slackvm_unallocated": {
            "cpu": outcome.slackvm_unallocated.cpu,
            "mem": outcome.slackvm_unallocated.mem,
        },
        "pooled_placements": outcome.pooled_placements,
    }


def outcome_from_dict(data: Mapping) -> DistributionOutcome:
    """Invert :func:`outcome_to_dict`."""
    return DistributionOutcome(
        provider=data["provider"],
        mix=tuple(float(s) for s in data["mix"]),  # type: ignore[arg-type]
        seed=int(data["seed"]),
        baseline_pms_per_level={
            float(ratio): int(pms)
            for ratio, pms in data["baseline_pms_per_level"].items()
        },
        slackvm_pms=int(data["slackvm_pms"]),
        baseline_unallocated=UnallocatedShares(
            cpu=float(data["baseline_unallocated"]["cpu"]),
            mem=float(data["baseline_unallocated"]["mem"]),
        ),
        slackvm_unallocated=UnallocatedShares(
            cpu=float(data["slackvm_unallocated"]["cpu"]),
            mem=float(data["slackvm_unallocated"]["mem"]),
        ),
        pooled_placements=int(data["pooled_placements"]),
    )


@dataclass(frozen=True)
class CellResult:
    """Outcome (or captured failure) of one sweep cell.

    ``status`` is ``"ok"`` (``outcome`` set) or ``"failed"`` (``error``
    set to ``{"type", "message", "traceback"}``).  A failed cell is a
    *result*, not an exception: sibling cells keep running and the
    failure — including the seed needed to replay it — is checkpointed
    like any other record.
    """

    provider: str
    mix_label: str
    mix: LevelMix
    seed: int
    status: str
    outcome: Optional[DistributionOutcome] = None
    error: Optional[Mapping] = None
    #: Volatile wall-clock; excluded from serialization *and* equality.
    elapsed_s: float = field(default=0.0, compare=False)

    @property
    def key(self) -> str:
        return f"{self.provider}/{self.mix_label}/{self.seed}"

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_record(self) -> dict:
        """The deterministic checkpoint record (no wall-clock fields)."""
        record = {
            "kind": "cell",
            "key": self.key,
            "provider": self.provider,
            "mix_label": self.mix_label,
            "mix": list(self.mix),
            "seed": self.seed,
            "status": self.status,
        }
        if self.outcome is not None:
            record["outcome"] = outcome_to_dict(self.outcome)
        if self.error is not None:
            record["error"] = dict(self.error)
        return record

    @classmethod
    def from_record(cls, record: Mapping, elapsed_s: float = 0.0) -> "CellResult":
        status = record.get("status")
        if status not in (STATUS_OK, STATUS_FAILED):
            raise RunnerError(f"cell record has invalid status {status!r}")
        outcome = record.get("outcome")
        return cls(
            provider=record["provider"],
            mix_label=record["mix_label"],
            mix=tuple(float(s) for s in record["mix"]),  # type: ignore[arg-type]
            seed=int(record["seed"]),
            status=status,
            outcome=None if outcome is None else outcome_from_dict(outcome),
            error=record.get("error"),
            elapsed_s=elapsed_s,
        )
