"""Drop-in parallel variants of the Figure 3 / Figure 4 drivers.

Same signatures and return shapes as
:func:`repro.analysis.experiments.fig3_series` /
:func:`~repro.analysis.experiments.fig4_grid`, plus ``workers`` /
``out`` / ``resume``.  With ``workers=1`` the cells run in-process;
results are bit-identical across worker counts (the runner's
determinism contract), so these are safe substitutions everywhere the
serial drivers are used today.

Catalogs are addressed by registry name (workers resolve them from
:data:`repro.workload.PROVIDERS`); an ad-hoc :class:`Catalog` object
that is not registered there cannot be shipped to workers and is
rejected up front.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.analysis.experiments import DistributionOutcome
from repro.core.errors import RunnerError
from repro.hardware.machine import SIM_WORKER, MachineSpec
from repro.obs.metrics import MetricsRegistry
from repro.runner.runner import run_sweep
from repro.runner.spec import SweepSpec
from repro.workload.catalog import PROVIDERS, Catalog
from repro.workload.distributions import DISTRIBUTIONS, LevelMix

__all__ = ["parallel_fig3_series", "parallel_fig4_grid"]


def _provider_name(catalog: Union[Catalog, str]) -> str:
    if isinstance(catalog, str):
        name = catalog
    else:
        name = catalog.name
        if PROVIDERS.get(name) is not catalog:
            raise RunnerError(
                f"catalog {name!r} is not registered in repro.workload.PROVIDERS; "
                "the parallel drivers address catalogs by registry name"
            )
    if name not in PROVIDERS:
        raise RunnerError(
            f"unknown provider {name!r}; expected one of {sorted(PROVIDERS)}"
        )
    return name


def _mix_entries(mixes: Optional[Mapping[str, LevelMix]]) -> tuple[str, ...]:
    """Encode a fig3/fig4-style ``{label: mix}`` mapping as spec entries."""
    if mixes is None:
        return tuple(DISTRIBUTIONS)
    entries = []
    for label, mix in mixes.items():
        triple = tuple(float(s) for s in mix)
        if DISTRIBUTIONS.get(label.upper()) == triple:
            entries.append(label.upper())
        else:
            s1, s2, s3 = triple
            entries.append(f"{label}:{s1:g},{s2:g},{s3:g}")
    return tuple(entries)


def _build_spec(
    catalog: Union[Catalog, str],
    machine: MachineSpec,
    target_population: int,
    seeds: Sequence[int],
    mixes: Optional[Mapping[str, LevelMix]],
    policy: str,
    pooling: bool,
    baseline_policy: str,
) -> SweepSpec:
    return SweepSpec(
        providers=(_provider_name(catalog),),
        mixes=_mix_entries(mixes),
        seeds=tuple(int(s) for s in seeds),
        target_population=target_population,
        policy=policy,
        baseline_policy=baseline_policy,
        pooling=pooling,
        machine_cpus=machine.cpus,
        machine_mem_gb=machine.mem_gb,
    )


def parallel_fig3_series(
    catalog: Union[Catalog, str],
    machine: MachineSpec = SIM_WORKER,
    target_population: int = 500,
    seed: int = 0,
    mixes: Optional[Mapping[str, LevelMix]] = None,
    *,
    workers: int = 1,
    out: Optional[str] = None,
    resume: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
    policy: str = "progress",
    pooling: bool = True,
    baseline_policy: str = "first_fit",
) -> dict[str, DistributionOutcome]:
    """Fig. 3 unallocated-share series, sharded over a process pool."""
    spec = _build_spec(
        catalog, machine, target_population, (seed,), mixes,
        policy, pooling, baseline_policy,
    )
    sweep = run_sweep(
        spec, workers=workers, out=out, resume=resume,
        metrics=metrics, progress=progress,
    ).raise_on_failure()
    return {
        result.mix_label: result.outcome
        for result in sweep.results.values()
        if result.outcome is not None
    }


def parallel_fig4_grid(
    catalog: Union[Catalog, str],
    machine: MachineSpec = SIM_WORKER,
    target_population: int = 500,
    seeds: Sequence[int] = (0,),
    mixes: Optional[Mapping[str, LevelMix]] = None,
    *,
    workers: int = 1,
    out: Optional[str] = None,
    resume: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
    policy: str = "progress",
    pooling: bool = True,
    baseline_policy: str = "first_fit",
) -> dict[str, float]:
    """Fig. 4 seed-averaged PM savings, sharded over a process pool."""
    spec = _build_spec(
        catalog, machine, target_population, seeds, mixes,
        policy, pooling, baseline_policy,
    )
    sweep = run_sweep(
        spec, workers=workers, out=out, resume=resume,
        metrics=metrics, progress=progress,
    ).raise_on_failure()
    per_label: dict[str, list[float]] = {
        label: [] for label, _ in spec.resolved_mixes
    }
    for result in sweep.results.values():
        assert result.outcome is not None  # raise_on_failure() guarantees it
        per_label[result.mix_label].append(result.outcome.savings_percent)
    return {label: float(np.mean(vals)) for label, vals in per_label.items()}
